/**
 * @file
 * Request/response types of the render-serving subsystem.
 *
 * A RenderRequest names a registered scene, a camera, a pixel region,
 * and a quality tier; the RenderService tiles it, batches the tiles
 * with tiles from *other* in-flight requests, and answers with a
 * RenderResponse carrying the pixels and per-request accounting.
 *
 * Determinism contract: for QualityTier::Full, every served pixel is
 * bit-identical to Trainer::renderImage of the same field and
 * (quantized) camera -- regardless of worker count, cache state, tile
 * boundaries, or how requests interleave. Lower tiers trade samples
 * per ray for latency and are each deterministic in their own right.
 */

#ifndef INSTANT3D_SERVE_SERVE_TYPES_HH
#define INSTANT3D_SERVE_SERVE_TYPES_HH

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/vec3.hh"
#include "scene/camera.hh"
#include "scene/image.hh"

namespace instant3d {

namespace obs {
class RequestTrace;
} // namespace obs

/**
 * Camera quantization lattice denominator of the Full quality tier.
 * Full is pinned to 1/4096: the bit-identity contract ("a served Full
 * pixel equals Trainer::renderImage of the same quantized camera")
 * is stated against this lattice, so it is a constant, not a knob.
 * Lower tiers may snap onto coarser, configurable lattices (see
 * RenderServiceConfig::cameraLattice) so a moving viewer re-hits
 * cached tiles across frames.
 */
constexpr float fullCameraLattice = 4096.0f;

/**
 * Value-type camera description, quantizable for cache keying. The
 * service snaps every request's spec onto a lattice *before* building
 * the Camera, so near-identical viewpoints share rendered tiles and a
 * cache hit is still bit-exact for the camera actually rendered. The
 * lattice denominator is per quality tier: Full always uses
 * fullCameraLattice (1/4096); preview tiers may use coarser lattices.
 */
struct CameraSpec
{
    Vec3 eye;
    Vec3 target;
    Vec3 up{0.0f, 0.0f, 1.0f};
    float vfovDeg = 45.0f;
    int width = 0;  //!< Full image width in pixels.
    int height = 0; //!< Full image height in pixels.

    /** Snap all float fields onto the 1/`lattice` lattice. */
    CameraSpec
    quantized(float lattice = fullCameraLattice) const
    {
        auto q = [lattice](float v) {
            return std::round(v * lattice) / lattice;
        };
        CameraSpec s = *this;
        s.eye = {q(eye.x), q(eye.y), q(eye.z)};
        s.target = {q(target.x), q(target.y), q(target.z)};
        s.up = {q(up.x), q(up.y), q(up.z)};
        s.vfovDeg = q(vfovDeg);
        return s;
    }

    /** Build the pinhole camera this spec describes. */
    Camera
    makeCamera() const
    {
        return Camera(eye, target, up, vfovDeg, width, height);
    }

    /**
     * FNV-1a over the quantized fields (cache keying). The integer
     * snap uses the *same* `lattice` as quantized(), so the key and
     * the rendered camera can never drift onto different lattices.
     */
    uint64_t
    hashKey(float lattice = fullCameraLattice) const
    {
        CameraSpec s = quantized(lattice);
        uint64_t h = 1469598103934665603ULL;
        auto mix = [&h](int32_t v) {
            for (int b = 0; b < 4; b++) {
                h ^= static_cast<uint64_t>((v >> (8 * b)) & 0xff);
                h *= 1099511628211ULL;
            }
        };
        auto mixf = [&](float v) {
            mix(static_cast<int32_t>(std::lround(v * lattice)));
        };
        mixf(s.eye.x); mixf(s.eye.y); mixf(s.eye.z);
        mixf(s.target.x); mixf(s.target.y); mixf(s.target.z);
        mixf(s.up.x); mixf(s.up.y); mixf(s.up.z);
        mixf(s.vfovDeg);
        mix(s.width);
        mix(s.height);
        return h;
    }
};

/** A pixel-space rectangle; w == 0 means "the full image". */
struct TileRect
{
    int x = 0;
    int y = 0;
    int w = 0;
    int h = 0;
};

/**
 * Quality tier: tier t renders with samplesPerRay >> t. Full is the
 * trainer-parity tier (bit-identical to Trainer::renderImage); lower
 * tiers are cheaper previews with their own deterministic output.
 */
enum class QualityTier : uint8_t
{
    Full = 0,
    Half = 1,
    Preview = 2,
};

constexpr int numQualityTiers = 3;

/** Terminal status of one request. */
enum class RequestStatus : uint8_t
{
    Ok = 0,
    Rejected,         //!< Admission queue full; retry after a backoff.
    DeadlineExceeded, //!< Deadline passed before all tiles rendered.
    UnknownScene,     //!< Scene id not registered.
    BadRequest,       //!< Malformed camera or out-of-bounds region.
    Shutdown,         //!< Service destroyed while the request was queued.
    ColdStart,        //!< Scene evicted; reload begun -- retry after
                      //!< retryAfterMs (or fail over to a warm replica).
    SceneUnavailable, //!< Scene quarantined (structurally-bad
                      //!< checkpoint); retrying here cannot succeed.
};

/** Stable lowercase name of a request status (logs, trace notes). */
inline const char *
requestStatusName(RequestStatus s)
{
    switch (s) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::DeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::UnknownScene: return "unknown_scene";
    case RequestStatus::BadRequest: return "bad_request";
    case RequestStatus::Shutdown: return "shutdown";
    case RequestStatus::ColdStart: return "cold_start";
    case RequestStatus::SceneUnavailable: return "scene_unavailable";
    }
    return "invalid";
}

/** One render request against a registered scene. */
struct RenderRequest
{
    std::string sceneId;
    CameraSpec camera;
    TileRect roi;       //!< Region of interest; w == 0 = full image.
    QualityTier quality = QualityTier::Full;

    /**
     * Worst tier the client will accept when the service degrades
     * under load (see RenderServiceConfig::degradeUnderLoad). Must be
     * `quality` or lower; Preview (the default) allows the full
     * Full->Half->Preview ladder, while minQuality == quality opts the
     * request out of degradation entirely (it is rejected instead).
     */
    QualityTier minQuality = QualityTier::Preview;

    /**
     * Soft deadline in milliseconds from submission; 0 disables.
     * Checked when each tile is *dequeued*: tiles still queued past
     * the deadline are dropped and the request completes with
     * DeadlineExceeded (already-rendered tiles remain in the partial
     * image). Tiles dispatched to a render chunk before the deadline
     * run to completion, so a response may still arrive with status
     * Ok somewhat after the deadline -- this is an admission-side
     * load-shedding knob, not a render-abort guarantee.
     */
    double deadlineMs = 0.0;

    /**
     * Stable identity of the viewer (client session) issuing this
     * request; empty opts out. With speculative prefetch enabled, the
     * service keeps the last few quantized camera specs per viewerId
     * and extrapolates the camera path (constant velocity) to render
     * the *predicted* next frame's tiles into the cache during idle
     * worker time. Purely a scheduling hint: it never changes pixels.
     */
    std::string viewerId;

    /**
     * Telemetry TraceContext (see obs/trace.hh). Null on client
     * requests: the first tracing-aware layer the request enters
     * (router or service) begins a trace when telemetry is enabled,
     * and that same layer completes it; intermediate layers only
     * append their spans. Never affects pixels.
     */
    std::shared_ptr<obs::RequestTrace> trace;
};

/** Answer to one RenderRequest. */
struct RenderResponse
{
    RequestStatus status = RequestStatus::Ok;
    Image image;            //!< roi-sized pixels (partial on deadline).
    uint64_t sceneGeneration = 0;
    int tilesRendered = 0;  //!< Tiles rendered by the batch pipeline.
    int tilesFromCache = 0; //!< Tiles served from the LRU tile cache.
    double queueMs = 0.0;   //!< Submission -> first tile dequeued.
    double totalMs = 0.0;   //!< Submission -> completion.

    /**
     * Backoff hint when status == Rejected (scaled by the admission
     * queue's current load: deeper queue -> longer hint) or ColdStart
     * (scaled by the registry's observed load time and reload-queue
     * depth: a load-aware "come back when it's plausibly warm").
     */
    int retryAfterMs = 0;

    /**
     * Tier the pixels were actually rendered at. Equals the requested
     * tier unless QoS degradation stepped it down; the Full-tier
     * bit-identity contract applies when servedQuality == Full.
     */
    QualityTier servedQuality = QualityTier::Full;

    /** Tiers stepped down from the request (0 = served as asked). */
    int degradeLevels = 0;
};

/** Cumulative service counters (RenderService::stats snapshot). */
struct ServeStats
{
    uint64_t requestsAccepted = 0;
    uint64_t requestsCompleted = 0;
    uint64_t requestsRejected = 0;
    uint64_t requestsDeadlineExceeded = 0;
    uint64_t requestsUnknownScene = 0;
    uint64_t requestsBadRequest = 0;
    /** Requests answered ColdStart (scene evicted, reload in flight). */
    uint64_t requestsColdStart = 0;
    /** Requests answered SceneUnavailable (quarantined checkpoint). */
    uint64_t requestsSceneUnavailable = 0;
    uint64_t tilesRendered = 0;
    uint64_t tilesFromCache = 0;
    uint64_t raysRendered = 0;
    uint64_t chunksRendered = 0;
    /** Chunks whose tiles came from more than one request. */
    uint64_t crossRequestChunks = 0;
    /** Highest simultaneous tile-queue depth observed. */
    uint64_t queueDepthHighwater = 0;

    /** Requests completed Ok at a tier below the one requested. */
    uint64_t requestsDegraded = 0;
    /** Tier step-downs decided at admission (deep queue). */
    uint64_t admissionDegradations = 0;
    /** Tier step-downs decided at dequeue (deadline at risk). */
    uint64_t deadlineDegradations = 0;
    /** Requests completed Ok, bucketed by the tier actually served. */
    uint64_t requestsServedPerTier[numQualityTiers] = {0, 0, 0};

    /** Tile-cache hits bucketed by the tier of the looked-up key. */
    uint64_t cacheHitsPerTier[numQualityTiers] = {0, 0, 0};
    /** Tile-cache misses bucketed by the tier of the looked-up key. */
    uint64_t cacheMissesPerTier[numQualityTiers] = {0, 0, 0};

    // Speculative prefetch accounting (zero unless cfg.prefetch).
    /** Predicted tiles enqueued at background priority. */
    uint64_t prefetchTilesEnqueued = 0;
    /** Predicted tiles actually rendered into the cache. */
    uint64_t prefetchTilesRendered = 0;
    /** Predicted tiles cancelled before rendering (superseded by a
     *  newer prediction, already cached, or over the queue bound). */
    uint64_t prefetchTilesCancelled = 0;
    /** Rays spent on prefetch renders (excluded from raysRendered). */
    uint64_t prefetchRaysRendered = 0;
    /** Prefetched cache entries later hit by >= 1 demand lookup. */
    uint64_t prefetchHits = 0;
    /** Prefetched cache entries dropped without ever being hit. */
    uint64_t prefetchWasted = 0;
};

// ------------------------------------------------------------- fleet

/**
 * Typed outcome of one router->shard dispatch attempt. Ok resets a
 * shard's consecutive-failure count; Failed/Timeout/Crashed advance it
 * (and can open the circuit breaker); Rejected is backpressure from a
 * healthy shard -- it triggers failover but never trips the breaker.
 */
enum class ShardOutcome : uint8_t
{
    Ok = 0,
    Rejected, //!< Shard admission queue full (healthy but busy).
    Timeout,  //!< No response within the per-attempt shard timeout.
    Failed,   //!< Dispatch failed (shard error / draining / dead).
    Crashed,  //!< Shard stopped while the request was on it.
    /** Shard is reloading the (evicted) scene: fail over to a warm
     *  replica, breaker-neutral -- a cold cache is not a sick shard. */
    ColdStart,
};

/** Stable lowercase name of a shard outcome (logs, trace spans). */
inline const char *
shardOutcomeName(ShardOutcome o)
{
    switch (o) {
    case ShardOutcome::Ok: return "ok";
    case ShardOutcome::Rejected: return "rejected";
    case ShardOutcome::Timeout: return "timeout";
    case ShardOutcome::Failed: return "failed";
    case ShardOutcome::Crashed: return "crashed";
    case ShardOutcome::ColdStart: return "cold_start";
    }
    return "invalid";
}

/**
 * Circuit-breaker state of one shard. Closed admits traffic; Open
 * (entered after breakerFailureThreshold consecutive failures or
 * timeouts) skips the shard until breakerOpenMs elapse; HalfOpen then
 * admits exactly one probe request -- success closes the breaker,
 * failure reopens it.
 */
enum class BreakerState : uint8_t
{
    Closed = 0,
    Open,
    HalfOpen,
};

inline const char *
breakerStateName(BreakerState s)
{
    switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
    }
    return "invalid";
}

/** Per-shard slice of a FleetStats snapshot. */
struct ShardStats
{
    bool alive = true;     //!< False once crashed or fully drained.
    bool draining = false; //!< Drain in progress (no new admissions).
    BreakerState breaker = BreakerState::Closed;
    size_t scenes = 0;     //!< Scenes currently placed on this shard.
    uint64_t dispatched = 0; //!< Requests the router sent here.
    uint64_t served = 0;     //!< ... that completed Ok.
    uint64_t failed = 0;     //!< Failed or crashed outcomes.
    uint64_t rejected = 0;   //!< Backpressure rejections.
    uint64_t timeouts = 0;   //!< Per-attempt timeouts.
    uint64_t breakerOpens = 0;     //!< Closed/HalfOpen -> Open.
    uint64_t breakerHalfOpens = 0; //!< Open -> HalfOpen.
    uint64_t breakerCloses = 0;    //!< HalfOpen -> Closed.
    uint64_t coldStarts = 0;       //!< ColdStart outcomes from here.
};

/** Cumulative fleet counters (ShardRouter::fleetStats snapshot). */
struct FleetStats
{
    uint64_t requestsRouted = 0;  //!< Requests entering the router.
    uint64_t failovers = 0;       //!< Re-dispatches to another replica.
    uint64_t retries = 0;         //!< Re-dispatches of any kind.
    uint64_t hedgesIssued = 0;    //!< Second replicas dispatched.
    uint64_t hedgesWon = 0;       //!< Hedge responses that won the race.
    uint64_t shardsCrashed = 0;
    uint64_t shardsDrained = 0;
    /** Requests answered Rejected because no live replica was usable. */
    uint64_t noReplicaAvailable = 0;
    /** Failovers taken because the placed replica was cold-starting. */
    uint64_t coldStartFailovers = 0;

    // Fleet-wide cache/prefetch aggregates (summed over live shards):
    // the per-tier lattice and prefetch effects are per-shard-service
    // counters, surfaced here so a fleet operator sees one number.
    uint64_t cacheHitsPerTier[numQualityTiers] = {0, 0, 0};
    uint64_t cacheMissesPerTier[numQualityTiers] = {0, 0, 0};
    uint64_t prefetchTilesEnqueued = 0;
    uint64_t prefetchTilesRendered = 0;
    uint64_t prefetchTilesCancelled = 0;
    uint64_t prefetchHits = 0;
    uint64_t prefetchWasted = 0;

    std::vector<ShardStats> shards;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_SERVE_TYPES_HH
