/**
 * @file
 * The render service: a synchronous-core, async-facade front end over
 * the registry's trained models.
 *
 * Requests enter through submit() (async, future-based) or render()
 * (blocking). Each accepted request is split into fixed-size tiles
 * that join a bounded admission queue; a scheduler thread dequeues in
 * two-level priority order -- earliest-deadline-first among
 * deadline-bearing requests, then arrival order for the rest, with
 * speculative prefetch tiles strictly last (dispatched only when no
 * demand tile is queued) -- answers tiles from the LRU cache, groups
 * the misses by (scene, quality tier), and packs them into render
 * chunks of up to chunkRays rays -- **coalescing tiles from different
 * requests into the same chunk**, so the stream kernels
 * (NerfField::queryStream via VolumeRenderer::renderRays) run at full
 * batch width even when individual requests are small. Chunks execute
 * on the shared ThreadPool; per-rank Workspace arenas keep the hot
 * path allocation-free. Each pass pulls at most a worker-count-scaled
 * ray budget so a late-arriving urgent request overtakes queued
 * non-deadline tiles at the next pass instead of waiting out a full
 * queue drain.
 *
 * Contracts:
 *  - Determinism: every ray is composited independently in t order, so
 *    a served pixel is bit-identical for any worker count, chunk
 *    packing, cache state, or request interleaving -- and, at
 *    QualityTier::Full, bit-identical to Trainer::renderImage of the
 *    same field and quantized camera.
 *  - Backpressure: when the admission queue holds more than
 *    maxQueueTiles tiles, submissions are rejected immediately with
 *    status Rejected and a load-proportional retry-after hint, instead
 *    of growing the queue without bound. With degradeUnderLoad, deep
 *    queues instead *degrade*: the request is admitted at a lower
 *    quality tier (one step per full maxQueueTiles of depth, never
 *    below the request's minQuality) up to a hard tile ceiling.
 *  - Deadlines: a request whose deadline passes before its tiles are
 *    dequeued completes with DeadlineExceeded; remaining tiles are
 *    dropped (rendered ones stay in the partial image). With
 *    degradeUnderLoad, a request that dequeues with most of its
 *    deadline already spent queueing is first stepped down one tier
 *    to improve its odds of finishing in time.
 */

#ifndef INSTANT3D_SERVE_RENDER_SERVICE_HH
#define INSTANT3D_SERVE_RENDER_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hh"
#include "common/workspace.hh"
#include "serve/scene_registry.hh"
#include "serve/tile_cache.hh"

namespace instant3d {

namespace obs {
class LatencyHistogram;
class MetricsSink;
} // namespace obs

/** Service tuning knobs. */
struct RenderServiceConfig
{
    /**
     * Render worker threads (the ThreadPool size); 0 = auto
     * (INSTANT3D_THREADS / hardware concurrency). Results are
     * bit-identical for any value.
     */
    int workers = 0;

    /** Tile edge length in pixels. */
    int tilePixels = 16;

    /**
     * Target rays per coalesced render chunk. Tiles are packed until
     * the next tile would exceed this; one oversized tile still forms
     * its own chunk.
     */
    int chunkRays = 2048;

    /**
     * Admission cap on tiles outstanding (queued or rendering): a
     * request whose tiles would push the count past this is rejected
     * with a retry-after hint. A request whose tile count *alone*
     * exceeds the cap can never be admitted and is answered with
     * BadRequest instead of a retry hint.
     */
    int maxQueueTiles = 4096;

    /** LRU tile-cache capacity in tiles; 0 disables caching. */
    int cacheTiles = 0;

    /**
     * LRU tile-cache byte budget (pixel payload); 0 = unbounded.
     * Tiles vary ~64x in size across roi/tier combinations, so a
     * count cap alone cannot bound memory -- the byte budget is the
     * primary bound and cacheTiles stays as a secondary entry cap.
     */
    long long cacheBytes = 0;

    /**
     * Base retry-after hint (ms) attached to rejected requests. The
     * hint in the response is load-proportional: base scaled by
     * outstanding tiles over maxQueueTiles (at least the base).
     */
    int retryAfterMs = 5;

    /**
     * QoS degradation: when the admission queue is deep, serve
     * requests at a lower quality tier (Full->Half->Preview, one step
     * per full maxQueueTiles of depth, bounded by the request's
     * minQuality) instead of rejecting them. Off by default -- the
     * PR-5 reject-only behavior is unchanged unless opted in.
     */
    bool degradeUnderLoad = false;

    /**
     * Hard admission ceiling while degrading (outstanding tiles);
     * beyond it requests are rejected even at the lowest tier.
     * 0 = 4 * maxQueueTiles.
     */
    int maxQueueTilesDegraded = 0;

    /**
     * Deadline-risk degradation at dequeue: when a request's first
     * tiles dequeue with more than this fraction of the deadline
     * already spent queueing, the scheduler steps the request down one
     * tier (within minQuality) to win back render time. Only active
     * with degradeUnderLoad and a nonzero deadline.
     */
    double deadlineRiskFraction = 0.5;

    /**
     * Camera quantization lattice denominator per quality tier
     * (snap = round(v * L) / L; index by static_cast<int>(tier)).
     * Full is pinned to fullCameraLattice (1/4096) -- the bit-identity
     * contract is stated against it -- and validated at construction.
     * Half/Preview default to the same fine lattice; coarser values
     * (e.g. 1024, 256) collapse nearby viewpoints of a moving viewer
     * onto one cache key, trading exact camera placement for
     * cross-frame cache reuse at the preview tiers. The tile cache
     * keys on the snapped spec, so a hit is still bit-exact for the
     * (coarsely snapped) camera actually rendered.
     */
    float cameraLattice[numQualityTiers] = {
        fullCameraLattice, fullCameraLattice, fullCameraLattice};

    /**
     * Speculative tile prefetch: predict each viewer's next camera
     * (constant-velocity extrapolation over its last few quantized
     * specs, keyed by RenderRequest::viewerId) and render the
     * predicted frame's tiles straight into the tile cache when the
     * workers are otherwise idle. Prefetch is strictly lowest
     * priority -- dispatched only when no demand tile is queued -- and
     * queued predictions are cancelled when a newer prediction for the
     * same viewer supersedes them or demand traffic already rendered
     * the tile. Requires cacheTiles > 0. Never changes pixels: a
     * prefetched tile is bit-identical to the demand render it
     * replaces.
     */
    bool prefetch = false;

    /**
     * Bound on queued prefetch tiles; enqueueing past it cancels the
     * oldest queued predictions first (they are the stalest).
     */
    int maxPrefetchTiles = 256;

    /**
     * Quantized (1/4096) camera specs remembered per viewer for the
     * motion predictor; 2 suffice for constant velocity.
     */
    int prefetchHistory = 4;
};

/**
 * The serving front end. One instance owns its scheduler thread,
 * ThreadPool, workspaces, and tile cache; the SceneRegistry is shared
 * and may be mutated (re-registration) while the service runs.
 */
class RenderService
{
  public:
    RenderService(SceneRegistry &scene_registry,
                  const RenderServiceConfig &service_config);
    ~RenderService();

    RenderService(const RenderService &) = delete;
    RenderService &operator=(const RenderService &) = delete;

    /**
     * Asynchronous entry point: validates and enqueues the request,
     * returning a future that resolves when every tile is served (or
     * the request is rejected / expired / shut down). Safe to call
     * from any number of client threads.
     */
    std::future<RenderResponse> submit(const RenderRequest &request);

    /**
     * Blocking convenience wrapper: submit() and wait. A ColdStart
     * answer (scene evicted, single-flight reload begun) is absorbed
     * here: the call waits for the reload -- bounded by the request's
     * deadline when one is set, else until the load settles -- and
     * resubmits, so blocking callers see Ok/terminal statuses only
     * unless the deadline ran out while the scene was still cold.
     */
    RenderResponse render(const RenderRequest &request);

    /** Eagerly drop a scene's cached tiles (any generation). */
    void invalidateScene(const std::string &scene_id);

    /**
     * Quiesce the service without destroying it: stop admitting
     * requests and join the scheduler. Requests still queued when the
     * stop lands resolve RequestStatus::Shutdown (exactly as the
     * destructor always did -- the destructor is now a caller of this);
     * the in-flight chunk renders to completion first. Idempotent and
     * safe to call from any thread; submissions after (or racing) a
     * stop answer Shutdown. A stopped service stays queryable (stats,
     * cacheStats) so a router can retire a shard and still report it.
     */
    void stop();

    /** True once stop() has completed (the scheduler has exited). */
    bool stopped() const
    { return stoppedFlag.load(std::memory_order_acquire); }

    /**
     * Tiles admitted but not yet retired (queued or rendering). Zero
     * means the service is idle: a drain can wait on this after
     * cutting off new admissions.
     */
    size_t outstandingTileCount() const
    { return outstandingTiles.load(std::memory_order_acquire); }

    ServeStats stats() const;
    TileCache::Stats cacheStats() const { return cache.stats(); }
    int workerCount() const { return pool->threadCount(); }

  private:
    struct Pending;
    struct PrefetchBatch;

    /**
     * One tile of work. Demand tiles carry `req` (the pending request
     * they answer); speculative tiles carry `pre` instead and render
     * into the cache only -- exactly one of the two is set.
     */
    struct TileJob
    {
        std::shared_ptr<Pending> req;
        std::shared_ptr<PrefetchBatch> pre;
        TileRect tile; //!< Absolute pixel coordinates.
    };

    /** One coalesced render chunk: same scene + tier, >= 1 tiles. */
    struct Chunk
    {
        ServedScene *scene = nullptr;
        QualityTier tier = QualityTier::Full;
        int rays = 0;
        bool speculative = false; //!< All-prefetch chunk.
        std::vector<TileJob> tiles;
    };

    /** Per-viewer motion-predictor state (guarded by viewerMtx). */
    struct ViewerState
    {
        /** Last few 1/4096-quantized specs, most recent last. */
        std::vector<CameraSpec> history;
        /** Bumped per enqueued prediction; queued prefetch batches
         *  with an older epoch are superseded and cancel at dequeue.
         *  Shared so the scheduler checks without the viewer map. */
        std::shared_ptr<std::atomic<uint64_t>> epoch =
            std::make_shared<std::atomic<uint64_t>>(0);
        uint64_t lastTouch = 0; //!< For least-recently-seen GC.
    };

    float latticeFor(int tier) const
    { return cfg.cameraLattice[tier]; }

    void schedulerLoop();
    void renderChunk(const Chunk &chunk, int rank);
    void finishTile(const std::shared_ptr<Pending> &req, bool rendered,
                    bool from_cache);
    static void completeNow(std::promise<RenderResponse> &promise,
                            RequestStatus status, int retry_after_ms);

    /**
     * Motion-predictor hook, called once per admitted request that
     * names a viewerId: records the observation and, when the last two
     * observations imply motion, enqueues the predicted next frame's
     * tiles at background priority.
     */
    void maybeEnqueuePrefetch(const RenderRequest &request,
                              const ServedScenePtr &scene,
                              const TileRect &roi, int served_tier);

    /** Snapshot-time metrics collector (mirrors stats()). */
    void collectMetrics(obs::MetricsSink &sink) const;

    SceneRegistry &registry;
    RenderServiceConfig cfg;
    std::unique_ptr<ThreadPool> pool;
    std::vector<Workspace> workspaces; //!< One per pool rank.
    TileCache cache;

    std::mutex queueMtx;
    std::condition_variable queueCv;
    /**
     * Demand admission queue, two levels: deadline-bearing tiles
     * sorted by absolute deadline (EDF; multimap preserves arrival
     * order among equal deadlines, so one request's tiles stay
     * contiguous), then no-deadline tiles in arrival order. The
     * scheduler empties the EDF level before touching the FIFO level.
     */
    std::multimap<double, TileJob> deadlineQueue;
    std::deque<TileJob> fifoQueue;
    /** Speculative tiles: dispatched only when demand is empty. */
    std::deque<TileJob> prefetchQueue;
    /**
     * Tiles outstanding: enqueued at submit, decremented as each tile
     * reaches finishTile() -- so tiles being *rendered* still count
     * against the admission cap, not just tiles sitting in the queue.
     * Demand only; prefetch tiles never count against admission.
     */
    std::atomic<size_t> outstandingTiles{0};
    bool stopping = false;
    std::thread scheduler;
    std::mutex stopMtx; //!< Serializes stop() callers (join is once).
    std::atomic<bool> stoppedFlag{false};

    std::mutex viewerMtx;
    std::unordered_map<std::string, ViewerState> viewers;
    uint64_t viewerTouch = 0;

    std::atomic<uint64_t> nextRequestId{1};

    // Stats (relaxed atomics; stats() takes a consistent-enough
    // snapshot for monitoring).
    std::atomic<uint64_t> statAccepted{0}, statCompleted{0},
        statRejected{0}, statDeadline{0}, statUnknownScene{0},
        statBadRequest{0}, statColdStart{0}, statSceneUnavailable{0},
        statTilesRendered{0}, statTilesCached{0},
        statRays{0}, statChunks{0}, statCrossChunks{0},
        statQueueHighwater{0};
    std::atomic<uint64_t> statDegraded{0}, statAdmissionDegraded{0},
        statDeadlineDegraded{0},
        statServedTier[numQualityTiers]{{0}, {0}, {0}};
    std::atomic<uint64_t> statPrefetchEnqueued{0},
        statPrefetchRendered{0}, statPrefetchCancelled{0},
        statPrefetchRays{0};

    // Telemetry (src/obs/): this instance's Perfetto track group, the
    // metrics-collector registration handle, and hot-path histogram
    // pointers (registry references are stable for the process
    // lifetime, so they are resolved once in the constructor).
    int obsGroup = 0;
    uint64_t obsCollector = 0;
    obs::LatencyHistogram *histQueueMs = nullptr;
    obs::LatencyHistogram *histTotalMs = nullptr;
    obs::LatencyHistogram *histChunkMs = nullptr;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_RENDER_SERVICE_HH
