/**
 * @file
 * Telemetry metrics: a process-wide registry of named counters,
 * gauges, and log-bucketed latency histograms.
 *
 * Design goals, in order:
 *
 *  1. **Mergeable histograms.** Every LatencyHistogram shares one
 *     fixed bucket layout (4 sub-buckets per power-of-2 octave over
 *     [2^-10, 2^20) milliseconds), so histograms recorded on
 *     different shards or threads merge *exactly* -- bucket-wise
 *     integer addition, no resampling error -- unlike
 *     PercentileTracker's sort-all-samples approach, which cannot
 *     merge without concatenating sample sets. Percentile queries
 *     interpolate linearly inside the landing bucket, so they agree
 *     with an exact tracker to within one bucket width (~12-25%
 *     relative resolution).
 *  2. **Cheap hot path.** Counter::add is one relaxed atomic add to a
 *     per-thread shard slot (collapsed at snapshot); a histogram
 *     record is a bucket computation plus one relaxed add. Every
 *     recording site first pays exactly one relaxed load of the
 *     global enable flag -- the same disarm pattern as
 *     fault_injection.hh -- and compiling with
 *     -DINSTANT3D_DISABLE_TELEMETRY turns all sites into
 *     constant-false no-ops.
 *  3. **Bit-neutrality.** Nothing here touches pixels: served images
 *     are bit-identical with telemetry enabled, disabled, or compiled
 *     out (asserted in tests/test_obs.cc).
 *
 * Naming scheme: dot-separated "<subsystem>.<metric>" with an "_ms"
 * suffix on latency histograms ("serve.total_ms", "router.total_ms",
 * "train.phase.march_ms"). Components that already keep their own
 * counter structs (ServeStats / FleetStats / TrainStats) register a
 * *collector* instead of double-counting on the hot path: at snapshot
 * time each collector mirrors its struct into the page, and same-name
 * contributions from different instances (e.g. fleet shards) sum.
 *
 * Snapshots export as a Prometheus-style text page and as a JSON
 * block; the INSTANT3D_TELEMETRY environment variable ("0" disables)
 * sets the initial enable state (default: enabled).
 */

#ifndef INSTANT3D_OBS_TELEMETRY_HH
#define INSTANT3D_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace instant3d {
namespace obs {

namespace detail {
extern std::atomic<uint32_t> enabledFlag;
uint32_t counterShardIndex();
} // namespace detail

/**
 * The per-site check: is telemetry recording? One relaxed atomic load
 * when consulted; constant false under INSTANT3D_DISABLE_TELEMETRY.
 */
inline bool
enabled()
{
#ifdef INSTANT3D_DISABLE_TELEMETRY
    return false;
#else
    return detail::enabledFlag.load(std::memory_order_relaxed) != 0;
#endif
}

/** Runtime toggle (a no-op when compiled out). */
void setEnabled(bool on);

/** Counter shard slots (threads hash onto one; snapshot sums all). */
constexpr int numCounterShards = 16;

/**
 * Monotonically increasing event count. Thread-sharded: concurrent
 * writers land on (mostly) distinct cache lines, and value() collapses
 * the shards. The hot path is one relaxed load (enable check) plus one
 * relaxed fetch_add.
 */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!enabled())
            return;
        slots[detail::counterShardIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Slot &s : slots)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset()
    {
        for (Slot &s : slots)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> v{0};
    };
    Slot slots[numCounterShards];
};

/** Last-write-wins instantaneous value (queue depth, bytes held). */
class Gauge
{
  public:
    void
    set(double value)
    {
        if (!enabled())
            return;
        v.store(value, std::memory_order_relaxed);
    }

    double value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0.0};
};

// -------------------------------------------------------- histograms

/** Sub-buckets per power-of-2 octave. */
constexpr int histSubBuckets = 4;
/** Smallest tracked octave: values in [2^-10, 2^-9) ms (~1 us). */
constexpr int histMinExp = -10;
/** One past the largest tracked octave: 2^20 ms (~17.5 min). */
constexpr int histMaxExp = 20;
/** Interior buckets + underflow (index 0) + overflow (last index). */
constexpr int histNumBuckets =
    (histMaxExp - histMinExp) * histSubBuckets + 2;

/**
 * Plain (non-atomic) copy of a histogram's bucket counts. Because the
 * bucket edges are fixed process-wide constants, merge() is exact:
 * merging per-shard snapshots is indistinguishable from having
 * recorded every sample into one histogram.
 */
struct HistogramSnapshot
{
    uint64_t buckets[histNumBuckets] = {};
    uint64_t count = 0;

    /** Exact bucket-wise merge. */
    void merge(const HistogramSnapshot &o);

    /**
     * p in [0, 100]: linear interpolation inside the landing bucket
     * (matching PercentileTracker's rank convention to within one
     * bucket width). Returns 0 when empty.
     */
    double percentile(double p) const;

    double mean() const; //!< Bucket-midpoint approximation.
};

/**
 * Log-bucketed latency histogram in milliseconds with the fixed
 * process-wide bucket layout described in the file header. record()
 * is thread-safe (relaxed atomic bucket adds).
 */
class LatencyHistogram
{
  public:
    void
    record(double ms)
    {
        if (!enabled())
            return;
        buckets[bucketIndex(ms)].fetch_add(1,
                                           std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;
    void reset();

    /** Bucket landing index of a value (0 = underflow bucket). */
    static int bucketIndex(double ms);
    /** Inclusive left edge of a bucket (0 for the underflow bucket). */
    static double bucketLeft(int bucket);
    /** Exclusive right edge (+inf for the overflow bucket). */
    static double bucketRight(int bucket);

  private:
    std::atomic<uint64_t> buckets[histNumBuckets] = {};
};

// ---------------------------------------------------------- registry

/**
 * What a collector writes into at snapshot time. Same-name
 * contributions sum (the cross-shard aggregate is the interesting
 * number for counters; gauges sum too -- fleet totals -- which is
 * documented in README "Observability").
 */
class MetricsSink
{
  public:
    void counter(const std::string &name, uint64_t value);
    void gauge(const std::string &name, double value);

  private:
    friend class MetricsRegistry;
    std::map<std::string, uint64_t> *counters = nullptr;
    std::map<std::string, double> *gauges = nullptr;
};

/** One exported page: everything the registry knows, at one instant. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /**
     * Prometheus-style exposition text: one "# TYPE" header per
     * metric, names sanitized to [a-z0-9_] with an "instant3d_"
     * prefix, histograms as quantile-labeled summaries plus _count.
     */
    std::string prometheusText() const;

    /**
     * JSON object: {"counters": {...}, "gauges": {...},
     * "histograms": {"name": {"count": n, "p50": .., "p95": ..,
     * "p99": ..}}}.
     */
    std::string json() const;
};

/**
 * Process-wide metrics registry. Metric objects are created on first
 * lookup and never destroyed (references stay valid for the process
 * lifetime, so hot paths hold pointers and never re-lookup).
 * Collectors are registered per component instance and removed before
 * the instance dies; snapshot() runs every collector under the
 * registry lock, so removeCollector() also synchronizes against an
 * in-flight snapshot touching the component.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    using Collector = std::function<void(MetricsSink &)>;
    uint64_t addCollector(Collector fn);
    void removeCollector(uint64_t handle);

    MetricsSnapshot snapshot() const;

    /** Zero every registered metric (tests/bench phase isolation). */
    void resetAll();

  private:
    mutable std::mutex mtx;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
    std::map<uint64_t, Collector> collectors;
    uint64_t nextCollectorHandle = 1;
};

/**
 * RAII phase timer: on destruction adds the elapsed seconds to
 * `*accum_seconds` (when non-null) and records the elapsed
 * milliseconds into `*hist` (when non-null and telemetry is enabled).
 * Passing two nullptrs makes it free: the clock is only read when at
 * least one sink wants the result.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(double *accum_seconds,
                         LatencyHistogram *hist = nullptr);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    double *accum;
    LatencyHistogram *histogram;
    double t0 = 0.0;
};

} // namespace obs
} // namespace instant3d

#endif // INSTANT3D_OBS_TELEMETRY_HH
