/**
 * @file
 * Per-request span tracing with Chrome trace-event export.
 *
 * A RequestTrace rides on RenderRequest (a shared_ptr TraceContext)
 * from ShardRouter::routeOne through shard dispatch, RenderService
 * admission, the EDF queue wait, chunk render, and cache scatter --
 * one span per stage, with attempt/hedge/failover/degradation
 * annotations attached along the way. The layer that *created* the
 * trace (router for routed requests, service for direct ones)
 * completes it; completed traces land in the process-wide TraceRing,
 * a bounded lock-protected ring of the last N requests (default 256).
 *
 * The ring also holds *activity* spans that belong to no single
 * request -- scheduler passes and chunk renders -- so the exported
 * Chrome trace-event JSON (exportChromeTrace(), loadable in Perfetto
 * or chrome://tracing) shows named slices on per-worker tracks: each
 * RenderService is a "process" (track group), tid 0 is its scheduler,
 * tid 1..N are its pool workers, and the router is its own group.
 *
 * A trace whose end-to-end time exceeds the ring's slow threshold is
 * dumped through warn() as a per-span breakdown at completion (the
 * slow-request log; see examples/serve_demo.cpp).
 *
 * Cost: every site is gated on obs::enabled() (one relaxed load
 * disarmed; compiled out under INSTANT3D_DISABLE_TELEMETRY), and
 * tracing never touches pixels -- served images are bit-identical
 * with tracing on, off, or compiled out.
 */

#ifndef INSTANT3D_OBS_TRACE_HH
#define INSTANT3D_OBS_TRACE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace instant3d {
namespace obs {

/** One named slice on one track: [beginT, endT] in monotonicSeconds. */
struct TraceSpan
{
    std::string name;
    double beginT = 0.0;
    double endT = 0.0;
    int trackGroup = 0; //!< Chrome "pid": router or service instance.
    int track = 0;      //!< Chrome "tid": 0 control, 1..N worker rank.
    /** Flat key/value annotations (attempt, shard, rays, ...). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * The TraceContext of one request. Spans append from any thread
 * (router dispatchers, the scheduler, pool workers -- hedged
 * dispatches can even write from two shards at once), so appends are
 * mutex-protected; the request path takes this lock only a handful of
 * times per request.
 */
class RequestTrace
{
  public:
    RequestTrace(std::string scene_id, uint64_t request_id);

    void addSpan(TraceSpan span);
    /** Request-level annotation ("status", "hedge_won", ...). */
    void note(const std::string &key, const std::string &value);

    const std::string &sceneId() const { return scene; }
    uint64_t id() const { return requestId; }
    double beginT() const { return begin; }
    double totalMs() const { return total; }

    std::vector<TraceSpan> spans() const;
    std::vector<std::pair<std::string, std::string>> notes() const;

    /** Human-readable per-span breakdown (the slow-request dump). */
    std::string summary() const;

  private:
    friend class TraceRing;
    std::string scene;
    uint64_t requestId = 0;
    double begin = 0.0;
    double total = 0.0; //!< Set at completion (ms).
    mutable std::mutex mtx;
    std::vector<TraceSpan> spanList;
    std::vector<std::pair<std::string, std::string>> noteList;
};

using RequestTracePtr = std::shared_ptr<RequestTrace>;

/**
 * Begin a trace for one request: returns nullptr when tracing is
 * disabled (every consumer null-checks, so the disarmed path never
 * allocates). Request ids are drawn from a process-wide sequence.
 */
RequestTracePtr beginTrace(const std::string &scene_id);

/** Allocate a Chrome "pid" for one component (service / router). */
int nextTrackGroup();

/**
 * The process-wide ring of completed traces plus component activity
 * spans. Lock-protected and bounded: pushing past the capacity drops
 * the oldest trace.
 */
class TraceRing
{
  public:
    static TraceRing &global();

    void setCapacity(size_t n);
    /** Traces slower than this dump a breakdown via warn(); 0 = off. */
    void setSlowThresholdMs(double ms);
    double slowThresholdMs() const;

    /**
     * Complete a trace: stamps total_ms, fires the slow-request log
     * when over threshold, and appends to the ring. Null-safe.
     */
    void complete(const RequestTracePtr &trace, double total_ms);

    /** Record a request-less activity span (scheduler pass, chunk). */
    void recordActivity(TraceSpan span);

    /** Perfetto process_name for a track group. */
    void setTrackName(int track_group, const std::string &name);

    std::vector<RequestTracePtr> traces() const;
    uint64_t completedCount() const;
    uint64_t slowCount() const;
    void clear(); //!< Drop traces and activity (counters survive).

    /**
     * Chrome trace-event JSON ({"traceEvents": [...]}): every span of
     * every ringed trace plus the activity spans, as "X" (complete)
     * events with microsecond timestamps rebased to the earliest span.
     */
    std::string exportChromeTrace() const;

  private:
    mutable std::mutex mtx;
    size_t capacity = 256;
    double slowMs = 0.0;
    uint64_t nCompleted = 0;
    uint64_t nSlow = 0;
    std::deque<RequestTracePtr> ring;
    std::deque<TraceSpan> activity;
    std::map<int, std::string> trackNames;
};

/**
 * RAII span: records [construction, destruction] onto `trace` (when
 * non-null) under `name`. Annotations added via arg() while open.
 */
class ScopedSpan
{
  public:
    ScopedSpan(RequestTrace *trace, const char *name, int track_group,
               int track);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    void arg(const std::string &key, const std::string &value);

  private:
    RequestTrace *target;
    TraceSpan span;
};

} // namespace obs
} // namespace instant3d

#endif // INSTANT3D_OBS_TRACE_HH
