#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/telemetry.hh"

namespace instant3d {
namespace obs {

// ----------------------------------------------------- request trace

RequestTrace::RequestTrace(std::string scene_id, uint64_t request_id)
    : scene(std::move(scene_id)), requestId(request_id),
      begin(monotonicSeconds())
{
}

void
RequestTrace::addSpan(TraceSpan span)
{
    std::lock_guard<std::mutex> lock(mtx);
    spanList.push_back(std::move(span));
}

void
RequestTrace::note(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mtx);
    noteList.emplace_back(key, value);
}

std::vector<TraceSpan>
RequestTrace::spans() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return spanList;
}

std::vector<std::pair<std::string, std::string>>
RequestTrace::notes() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return noteList;
}

std::string
RequestTrace::summary() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "request %llu scene=%s total=%.2fms\n",
                  static_cast<unsigned long long>(requestId),
                  scene.c_str(), total);
    out += buf;
    for (const auto &kv : noteList) {
        std::snprintf(buf, sizeof(buf), "  note %s=%s\n",
                      kv.first.c_str(), kv.second.c_str());
        out += buf;
    }
    // Spans relative to the trace origin, in begin order.
    std::vector<const TraceSpan *> ordered;
    ordered.reserve(spanList.size());
    for (const TraceSpan &s : spanList)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceSpan *a, const TraceSpan *b) {
                  return a->beginT < b->beginT;
              });
    for (const TraceSpan *s : ordered) {
        std::snprintf(buf, sizeof(buf),
                      "  span %-22s +%8.2fms dur %8.2fms [%d/%d]",
                      s->name.c_str(), (s->beginT - begin) * 1e3,
                      (s->endT - s->beginT) * 1e3, s->trackGroup,
                      s->track);
        out += buf;
        for (const auto &kv : s->args) {
            std::snprintf(buf, sizeof(buf), " %s=%s",
                          kv.first.c_str(), kv.second.c_str());
            out += buf;
        }
        out += '\n';
    }
    return out;
}

// -------------------------------------------------------- lifecycle

RequestTracePtr
beginTrace(const std::string &scene_id)
{
    if (!enabled())
        return nullptr;
    static std::atomic<uint64_t> nextId{1};
    return std::make_shared<RequestTrace>(
        scene_id, nextId.fetch_add(1, std::memory_order_relaxed));
}

int
nextTrackGroup()
{
    static std::atomic<int> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------- ring

TraceRing &
TraceRing::global()
{
    static TraceRing *g = new TraceRing;
    return *g;
}

void
TraceRing::setCapacity(size_t n)
{
    std::lock_guard<std::mutex> lock(mtx);
    capacity = std::max<size_t>(1, n);
    while (ring.size() > capacity)
        ring.pop_front();
}

void
TraceRing::setSlowThresholdMs(double ms)
{
    std::lock_guard<std::mutex> lock(mtx);
    slowMs = ms;
}

double
TraceRing::slowThresholdMs() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return slowMs;
}

void
TraceRing::complete(const RequestTracePtr &trace, double total_ms)
{
    if (!trace)
        return;
    trace->total = total_ms;
    bool slow = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        nCompleted++;
        slow = slowMs > 0.0 && total_ms > slowMs;
        if (slow)
            nSlow++;
        ring.push_back(trace);
        while (ring.size() > capacity)
            ring.pop_front();
    }
    // The dump runs outside the ring lock: summary() takes the
    // trace's own lock and warn() does I/O.
    if (slow) {
        char head[96];
        std::snprintf(head, sizeof(head),
                      "slow request (%.2f ms > %.2f ms threshold):\n",
                      total_ms, slowThresholdMs());
        warn(head + trace->summary());
    }
}

void
TraceRing::recordActivity(TraceSpan span)
{
    std::lock_guard<std::mutex> lock(mtx);
    activity.push_back(std::move(span));
    // Activity slices are denser than request traces (one per
    // scheduler pass / chunk); give them a few ring-widths of room.
    while (activity.size() > capacity * 8)
        activity.pop_front();
}

void
TraceRing::setTrackName(int track_group, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    trackNames[track_group] = name;
}

std::vector<RequestTracePtr>
TraceRing::traces() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return {ring.begin(), ring.end()};
}

uint64_t
TraceRing::completedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return nCompleted;
}

uint64_t
TraceRing::slowCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return nSlow;
}

void
TraceRing::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    ring.clear();
    activity.clear();
}

namespace {

/** Minimal JSON string escape (names and args are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void
appendEvent(std::string &out, const TraceSpan &s, double base_t,
            bool &first)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{",
                  first ? "" : ",", jsonEscape(s.name).c_str(),
                  (s.beginT - base_t) * 1e6,
                  (s.endT - s.beginT) * 1e6, s.trackGroup, s.track);
    out += buf;
    bool first_arg = true;
    for (const auto &kv : s.args) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":\"%s\"",
                      first_arg ? "" : ",",
                      jsonEscape(kv.first).c_str(),
                      jsonEscape(kv.second).c_str());
        out += buf;
        first_arg = false;
    }
    out += "}}";
    first = false;
}

} // namespace

std::string
TraceRing::exportChromeTrace() const
{
    std::vector<RequestTracePtr> snap;
    std::deque<TraceSpan> act;
    std::map<int, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mtx);
        snap.assign(ring.begin(), ring.end());
        act = activity;
        names = trackNames;
    }

    // Rebase timestamps so Perfetto doesn't show hours of dead time
    // before the first slice.
    double base_t = 0.0;
    bool have_base = false;
    auto consider = [&](const TraceSpan &s) {
        if (!have_base || s.beginT < base_t) {
            base_t = s.beginT;
            have_base = true;
        }
    };
    std::vector<std::vector<TraceSpan>> traceSpans;
    traceSpans.reserve(snap.size());
    for (const auto &t : snap) {
        traceSpans.push_back(t->spans());
        for (const TraceSpan &s : traceSpans.back())
            consider(s);
    }
    for (const TraceSpan &s : act)
        consider(s);

    std::string out = "{\"traceEvents\": [";
    bool first = true;
    char buf[256];
    for (const auto &kv : names) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
            "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
            first ? "" : ",", kv.first,
            jsonEscape(kv.second).c_str());
        out += buf;
        first = false;
    }
    for (const auto &spans : traceSpans)
        for (const TraceSpan &s : spans)
            appendEvent(out, s, base_t, first);
    for (const TraceSpan &s : act)
        appendEvent(out, s, base_t, first);
    out += "\n]}\n";
    return out;
}

// ------------------------------------------------------ scoped span

ScopedSpan::ScopedSpan(RequestTrace *trace, const char *name,
                       int track_group, int track)
    : target(trace)
{
    if (!target)
        return;
    span.name = name;
    span.trackGroup = track_group;
    span.track = track;
    span.beginT = monotonicSeconds();
}

ScopedSpan::~ScopedSpan()
{
    if (!target)
        return;
    span.endT = monotonicSeconds();
    target->addSpan(std::move(span));
}

void
ScopedSpan::arg(const std::string &key, const std::string &value)
{
    if (target)
        span.args.emplace_back(key, value);
}

} // namespace obs
} // namespace instant3d
