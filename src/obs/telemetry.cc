#include "obs/telemetry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/stats.hh"

namespace instant3d {
namespace obs {

namespace detail {

std::atomic<uint32_t> enabledFlag{1};

/**
 * Stable per-thread shard slot. A plain round-robin ticket spreads
 * threads evenly over the slots without hashing thread ids.
 */
uint32_t
counterShardIndex()
{
    static std::atomic<uint32_t> nextTicket{0};
    thread_local uint32_t shard =
        nextTicket.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint32_t>(numCounterShards);
    return shard;
}

namespace {
/** INSTANT3D_TELEMETRY=0 disables recording from startup. */
const bool envApplied = [] {
    if (const char *env = std::getenv("INSTANT3D_TELEMETRY"))
        if (env[0] == '0' && env[1] == '\0')
            enabledFlag.store(0, std::memory_order_relaxed);
    return true;
}();
} // namespace

} // namespace detail

void
setEnabled(bool on)
{
#ifdef INSTANT3D_DISABLE_TELEMETRY
    (void)on;
#else
    detail::enabledFlag.store(on ? 1 : 0, std::memory_order_relaxed);
#endif
}

// -------------------------------------------------------- histograms

int
LatencyHistogram::bucketIndex(double ms)
{
    if (!(ms > 0.0)) // <= 0 and NaN land in the underflow bucket.
        return 0;
    int exp2 = 0;
    double frac = std::frexp(ms, &exp2); // ms = frac * 2^exp2
    const int octave = exp2 - 1;         // ms in [2^octave, 2^octave+1)
    if (octave < histMinExp)
        return 0;
    if (octave >= histMaxExp)
        return histNumBuckets - 1;
    int sub = static_cast<int>((frac - 0.5) * 2.0 * histSubBuckets);
    sub = std::min(std::max(sub, 0), histSubBuckets - 1);
    return 1 + (octave - histMinExp) * histSubBuckets + sub;
}

double
LatencyHistogram::bucketLeft(int bucket)
{
    if (bucket <= 0)
        return 0.0;
    if (bucket >= histNumBuckets - 1)
        return std::ldexp(1.0, histMaxExp);
    const int octave = histMinExp + (bucket - 1) / histSubBuckets;
    const int sub = (bucket - 1) % histSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / histSubBuckets,
                      octave);
}

double
LatencyHistogram::bucketRight(int bucket)
{
    if (bucket <= 0)
        return std::ldexp(1.0, histMinExp);
    if (bucket >= histNumBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return bucketLeft(bucket + 1);
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot s;
    for (int b = 0; b < histNumBuckets; b++) {
        s.buckets[b] = buckets[b].load(std::memory_order_relaxed);
        s.count += s.buckets[b];
    }
    return s;
}

void
LatencyHistogram::reset()
{
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &o)
{
    for (int b = 0; b < histNumBuckets; b++)
        buckets[b] += o.buckets[b];
    count += o.count;
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    // Same rank convention as PercentileTracker: the target is the
    // real-valued order statistic p/100 * (n - 1), then interpolate
    // linearly across the landing bucket's width.
    p = std::min(100.0, std::max(0.0, p));
    const double target =
        p / 100.0 * static_cast<double>(count - 1);
    uint64_t before = 0;
    for (int b = 0; b < histNumBuckets; b++) {
        if (buckets[b] == 0)
            continue;
        const double inBucket = static_cast<double>(buckets[b]);
        if (target < static_cast<double>(before) + inBucket) {
            const double left = LatencyHistogram::bucketLeft(b);
            double right = LatencyHistogram::bucketRight(b);
            if (!std::isfinite(right))
                return left; // Overflow bucket: report its floor.
            const double frac =
                (target - static_cast<double>(before) + 0.5) /
                inBucket;
            return left +
                   std::min(1.0, std::max(0.0, frac)) * (right - left);
        }
        before += buckets[b];
    }
    return LatencyHistogram::bucketLeft(histNumBuckets - 1);
}

double
HistogramSnapshot::mean() const
{
    if (count == 0)
        return 0.0;
    double sum = 0.0;
    for (int b = 0; b < histNumBuckets; b++) {
        if (buckets[b] == 0)
            continue;
        const double left = LatencyHistogram::bucketLeft(b);
        const double right = LatencyHistogram::bucketRight(b);
        const double mid =
            std::isfinite(right) ? 0.5 * (left + right) : left;
        sum += mid * static_cast<double>(buckets[b]);
    }
    return sum / static_cast<double>(count);
}

// ---------------------------------------------------------- registry

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked intentionally: components deregister collectors in their
    // destructors, which may run during static teardown.
    static MetricsRegistry *g = new MetricsRegistry;
    return *g;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

uint64_t
MetricsRegistry::addCollector(Collector fn)
{
    std::lock_guard<std::mutex> lock(mtx);
    uint64_t handle = nextCollectorHandle++;
    collectors[handle] = std::move(fn);
    return handle;
}

void
MetricsRegistry::removeCollector(uint64_t handle)
{
    std::lock_guard<std::mutex> lock(mtx);
    collectors.erase(handle);
}

void
MetricsSink::counter(const std::string &name, uint64_t value)
{
    (*counters)[name] += value;
}

void
MetricsSink::gauge(const std::string &name, double value)
{
    (*gauges)[name] += value;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &kv : counters)
        s.counters[kv.first] += kv.second->value();
    for (const auto &kv : gauges)
        s.gauges[kv.first] += kv.second->value();
    for (const auto &kv : histograms)
        s.histograms[kv.first].merge(kv.second->snapshot());
    MetricsSink sink;
    sink.counters = &s.counters;
    sink.gauges = &s.gauges;
    for (const auto &kv : collectors)
        kv.second(sink);
    return s;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &kv : counters)
        kv.second->reset();
    for (const auto &kv : gauges)
        kv.second->set(0.0);
    for (const auto &kv : histograms)
        kv.second->reset();
}

// ------------------------------------------------------------ export

namespace {

/** Prometheus metric name: instant3d_ prefix, [a-z0-9_] body. */
std::string
promName(const std::string &name)
{
    std::string out = "instant3d_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c))
                   ? static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)))
                   : '_';
    return out;
}

void
appendFmt(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

} // namespace

std::string
MetricsSnapshot::prometheusText() const
{
    std::string out;
    for (const auto &kv : counters) {
        const std::string n = promName(kv.first);
        appendFmt(out, "# TYPE %s counter\n", n.c_str());
        appendFmt(out, "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(kv.second));
    }
    for (const auto &kv : gauges) {
        const std::string n = promName(kv.first);
        appendFmt(out, "# TYPE %s gauge\n", n.c_str());
        appendFmt(out, "%s %.6g\n", n.c_str(), kv.second);
    }
    for (const auto &kv : histograms) {
        const std::string n = promName(kv.first);
        appendFmt(out, "# TYPE %s summary\n", n.c_str());
        for (double q : {50.0, 95.0, 99.0})
            appendFmt(out, "%s{quantile=\"%.2f\"} %.6g\n", n.c_str(),
                      q / 100.0, kv.second.percentile(q));
        appendFmt(out, "%s_count %llu\n", n.c_str(),
                  static_cast<unsigned long long>(kv.second.count));
    }
    return out;
}

std::string
MetricsSnapshot::json() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &kv : counters) {
        appendFmt(out, "%s\n    \"%s\": %llu", first ? "" : ",",
                  kv.first.c_str(),
                  static_cast<unsigned long long>(kv.second));
        first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &kv : gauges) {
        appendFmt(out, "%s\n    \"%s\": %.6g", first ? "" : ",",
                  kv.first.c_str(), kv.second);
        first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &kv : histograms) {
        appendFmt(out,
                  "%s\n    \"%s\": {\"count\": %llu, \"p50\": %.6g, "
                  "\"p95\": %.6g, \"p99\": %.6g}",
                  first ? "" : ",", kv.first.c_str(),
                  static_cast<unsigned long long>(kv.second.count),
                  kv.second.percentile(50.0),
                  kv.second.percentile(95.0),
                  kv.second.percentile(99.0));
        first = false;
    }
    out += "\n  }\n}\n";
    return out;
}

// ------------------------------------------------------ scoped timer

ScopedTimer::ScopedTimer(double *accum_seconds, LatencyHistogram *hist)
    : accum(accum_seconds), histogram(hist)
{
    if (accum || histogram)
        t0 = monotonicSeconds();
}

ScopedTimer::~ScopedTimer()
{
    if (!accum && !histogram)
        return;
    const double dt = monotonicSeconds() - t0;
    if (accum)
        *accum += dt;
    if (histogram)
        histogram->record(dt * 1e3);
}

} // namespace obs
} // namespace instant3d
