/**
 * @file
 * Pinhole camera model and ray generation (training-pipeline Step 2:
 * "maps the pixels to rays", r = o + t d).
 */

#ifndef INSTANT3D_SCENE_CAMERA_HH
#define INSTANT3D_SCENE_CAMERA_HH

#include <cmath>
#include <vector>

#include "common/vec3.hh"

namespace instant3d {

/** A single ray r(t) = origin + t * direction (direction normalized). */
struct Ray
{
    Vec3 origin;
    Vec3 direction;

    Vec3 at(float t) const { return origin + direction * t; }
};

/**
 * Pinhole camera looking at a target point. Pixel (i, j) with i the
 * column and j the row maps to a ray through the image plane; the image
 * spans a symmetric field of view around the optical axis.
 */
class Camera
{
  public:
    /**
     * @param eye         Camera position (world space, unit-cube scene).
     * @param target      Look-at point.
     * @param up_hint     Approximate up direction.
     * @param vfov_deg    Vertical field of view in degrees.
     * @param img_width   Image width in pixels.
     * @param img_height  Image height in pixels.
     */
    Camera(const Vec3 &eye, const Vec3 &target, const Vec3 &up_hint,
           float vfov_deg, int img_width, int img_height)
        : position(eye), width(img_width), height(img_height)
    {
        forward = (target - eye).normalized();
        right = forward.cross(up_hint).normalized();
        up = right.cross(forward);
        float vfov = vfov_deg * 3.14159265358979323846f / 180.0f;
        tanHalfV = std::tan(0.5f * vfov);
        tanHalfH = tanHalfV * static_cast<float>(width) /
                   static_cast<float>(height);
    }

    int imageWidth() const { return width; }
    int imageHeight() const { return height; }
    const Vec3 &eye() const { return position; }

    /**
     * Ray through pixel (col, row); (u_off, v_off) in [0,1) jitters the
     * sample inside the pixel footprint (0.5, 0.5 = pixel center).
     */
    Ray
    pixelRay(int col, int row, float u_off = 0.5f, float v_off = 0.5f) const
    {
        float u = (static_cast<float>(col) + u_off) /
                  static_cast<float>(width) * 2.0f - 1.0f;
        float v = 1.0f - (static_cast<float>(row) + v_off) /
                  static_cast<float>(height) * 2.0f;
        Vec3 dir = forward + right * (u * tanHalfH) + up * (v * tanHalfV);
        return {position, dir.normalized()};
    }

  private:
    Vec3 position;
    Vec3 forward, right, up;
    float tanHalfV = 1.0f, tanHalfH = 1.0f;
    int width, height;
};

/**
 * Generate n_views cameras on a sphere of the given radius around the
 * scene center (0.5, 0.5, 0.5), the standard inward-facing capture rig
 * of NeRF-Synthetic. Uses a Fibonacci spiral restricted to the upper
 * hemisphere band so views are well distributed.
 */
std::vector<Camera> makeOrbitCameras(int n_views, float radius,
                                     int img_width, int img_height,
                                     float vfov_deg = 45.0f);

} // namespace instant3d

#endif // INSTANT3D_SCENE_CAMERA_HH
