#include "scene/dataset.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

std::vector<Camera>
makeOrbitCameras(int n_views, float radius, int img_width, int img_height,
                 float vfov_deg)
{
    fatalIf(n_views < 1, "makeOrbitCameras() needs at least one view");
    const Vec3 center(0.5f, 0.5f, 0.5f);
    std::vector<Camera> cams;
    cams.reserve(n_views);
    constexpr float golden = 2.39996322972865332f; // golden angle
    for (int i = 0; i < n_views; i++) {
        // Fibonacci spiral over an elevation band [10 deg, 55 deg].
        float frac = (static_cast<float>(i) + 0.5f) /
                     static_cast<float>(n_views);
        float elev = (10.0f + 45.0f * frac) *
                     3.14159265358979323846f / 180.0f;
        float azim = golden * static_cast<float>(i);
        Vec3 eye = center + Vec3(std::cos(azim) * std::cos(elev),
                                 std::sin(elev),
                                 std::sin(azim) * std::cos(elev)) * radius;
        cams.emplace_back(eye, center, Vec3(0, 1, 0), vfov_deg,
                          img_width, img_height);
    }
    return cams;
}

Vec3
renderRayGroundTruth(const Scene &scene, const Ray &ray,
                     const RenderOptions &opts, float *out_depth)
{
    float dt = (opts.tFar - opts.tNear) / static_cast<float>(opts.numSteps);
    float transmittance = 1.0f;
    Vec3 color;
    float depth_acc = 0.0f;

    for (int k = 0; k < opts.numSteps; k++) {
        float t = opts.tNear + (static_cast<float>(k) + 0.5f) * dt;
        Vec3 p = ray.at(t);
        float sigma = scene.density(p);
        if (sigma <= 0.0f)
            continue;
        float alpha = 1.0f - std::exp(-sigma * dt);
        float weight = transmittance * alpha;
        color += scene.color(p, ray.direction) * weight;
        depth_acc += t * weight;
        transmittance *= 1.0f - alpha;
        if (transmittance < 1e-4f)
            break;
    }

    color += opts.background * transmittance;
    if (out_depth) {
        // Rays that escape report the far plane, matching how depth
        // images are visualized in the paper's Fig. 5.
        *out_depth = depth_acc + transmittance * opts.tFar;
    }
    return color;
}

View
renderViewGroundTruth(const Scene &scene, const Camera &camera,
                      const RenderOptions &opts)
{
    View view{camera, Image(camera.imageWidth(), camera.imageHeight()), {}};
    view.depth.assign(
        static_cast<size_t>(camera.imageWidth()) * camera.imageHeight(),
        0.0f);
    for (int row = 0; row < camera.imageHeight(); row++) {
        for (int col = 0; col < camera.imageWidth(); col++) {
            float depth = 0.0f;
            Ray ray = camera.pixelRay(col, row);
            view.rgb.at(col, row) =
                renderRayGroundTruth(scene, ray, opts, &depth);
            view.depth[static_cast<size_t>(row) * camera.imageWidth() +
                       col] = depth;
        }
    }
    return view;
}

Dataset
makeDataset(ScenePtr scene, const DatasetConfig &config)
{
    fatalIf(!scene, "makeDataset() needs a scene");
    Dataset ds;
    ds.scene = scene;
    ds.renderOpts = config.renderOpts;

    auto train_cams = makeOrbitCameras(
        config.numTrainViews, config.cameraRadius, config.imageWidth,
        config.imageHeight);
    for (const auto &cam : train_cams)
        ds.trainViews.push_back(
            renderViewGroundTruth(*scene, cam, config.renderOpts));

    // Test cameras sit between training azimuths (radius offset avoids
    // exact duplication of any training pose).
    auto test_cams = makeOrbitCameras(
        config.numTestViews, config.cameraRadius * 1.04f,
        config.imageWidth, config.imageHeight);
    for (const auto &cam : test_cams)
        ds.testViews.push_back(
            renderViewGroundTruth(*scene, cam, config.renderOpts));

    return ds;
}

} // namespace instant3d
