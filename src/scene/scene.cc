#include "scene/scene.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

namespace {

/**
 * Signed-distance primitive with a base color. density() maps the signed
 * distance through a smooth step so surfaces have a finite shell the
 * trainer can actually learn at grid resolution.
 */
struct Primitive
{
    enum class Kind { Sphere, Box, Torus, Cylinder };

    Kind kind = Kind::Sphere;
    Vec3 center;
    Vec3 halfExtent;      // box half-size / (major, minor, -) for torus
    float radius = 0.1f;  // sphere/cylinder radius
    Vec3 baseColor{0.5f, 0.5f, 0.5f};
    float densityScale = 40.0f;

    float
    signedDistance(const Vec3 &p) const
    {
        Vec3 q = p - center;
        switch (kind) {
          case Kind::Sphere:
            return q.norm() - radius;
          case Kind::Box: {
            Vec3 a{std::fabs(q.x) - halfExtent.x,
                   std::fabs(q.y) - halfExtent.y,
                   std::fabs(q.z) - halfExtent.z};
            Vec3 outside{std::fmax(a.x, 0.0f), std::fmax(a.y, 0.0f),
                         std::fmax(a.z, 0.0f)};
            float inside = std::fmin(a.maxComponent(), 0.0f);
            return outside.norm() + inside;
          }
          case Kind::Torus: {
            float major = halfExtent.x;
            float minor = halfExtent.y;
            float ring = std::sqrt(q.x * q.x + q.z * q.z) - major;
            return std::sqrt(ring * ring + q.y * q.y) - minor;
          }
          case Kind::Cylinder: {
            float rad = std::sqrt(q.x * q.x + q.z * q.z) - radius;
            float cap = std::fabs(q.y) - halfExtent.y;
            float out = std::sqrt(
                std::fmax(rad, 0.0f) * std::fmax(rad, 0.0f) +
                std::fmax(cap, 0.0f) * std::fmax(cap, 0.0f));
            return out + std::fmin(std::fmax(rad, cap), 0.0f);
          }
        }
        return 1.0f;
    }

    /** Density falls off smoothly across a thin shell around the surface. */
    float
    density(const Vec3 &p) const
    {
        float d = signedDistance(p);
        constexpr float shell = 0.02f;
        if (d >= shell)
            return 0.0f;
        if (d <= 0.0f)
            return densityScale;
        float t = 1.0f - d / shell;
        return densityScale * t * t;
    }
};

/**
 * A scene assembled from primitives. Density is the max over primitives;
 * color is taken from the densest primitive with mild spatial patterning
 * and a small view-dependent sheen so the color MLP has real work to do.
 */
class PrimitiveScene : public Scene
{
  public:
    PrimitiveScene(std::string scene_name, std::vector<Primitive> prims,
                   float pattern_freq = 9.0f, float sheen = 0.12f)
        : sceneName(std::move(scene_name)), primitives(std::move(prims)),
          patternFreq(pattern_freq), sheenStrength(sheen)
    {
        panicIf(primitives.empty(), "PrimitiveScene with no primitives");
    }

    std::string name() const override { return sceneName; }

    float
    density(const Vec3 &p) const override
    {
        if (p.minComponent() < 0.0f || p.maxComponent() > 1.0f)
            return 0.0f;
        float best = 0.0f;
        for (const auto &prim : primitives)
            best = std::fmax(best, prim.density(p));
        return best;
    }

    Vec3
    color(const Vec3 &p, const Vec3 &d) const override
    {
        const Primitive *winner = &primitives.front();
        float best = -1.0f;
        for (const auto &prim : primitives) {
            float dens = prim.density(p);
            if (dens > best) {
                best = dens;
                winner = &prim;
            }
        }
        // Low-frequency spatial modulation of the base color.
        float mod = 0.5f + 0.5f * std::sin(patternFreq * p.x) *
                                  std::cos(patternFreq * p.y + 1.3f) *
                                  std::sin(patternFreq * p.z + 0.7f);
        Vec3 c = winner->baseColor * (0.75f + 0.25f * mod);
        // A small view-dependent sheen toward a fixed "light" direction.
        Vec3 light = Vec3(0.4f, 0.8f, 0.45f).normalized();
        float sheen = std::fmax(0.0f, d.normalized().dot(light));
        c += Vec3(sheenStrength) * sheen * sheen;
        return clamp(c, 0.0f, 1.0f);
    }

  private:
    std::string sceneName;
    std::vector<Primitive> primitives;
    float patternFreq;
    float sheenStrength;
};

Primitive
sphere(Vec3 c, float r, Vec3 col, float dens = 40.0f)
{
    Primitive p;
    p.kind = Primitive::Kind::Sphere;
    p.center = c;
    p.radius = r;
    p.baseColor = col;
    p.densityScale = dens;
    return p;
}

Primitive
box(Vec3 c, Vec3 half, Vec3 col, float dens = 40.0f)
{
    Primitive p;
    p.kind = Primitive::Kind::Box;
    p.center = c;
    p.halfExtent = half;
    p.baseColor = col;
    p.densityScale = dens;
    return p;
}

Primitive
torus(Vec3 c, float major, float minor, Vec3 col, float dens = 40.0f)
{
    Primitive p;
    p.kind = Primitive::Kind::Torus;
    p.center = c;
    p.halfExtent = Vec3(major, minor, 0.0f);
    p.baseColor = col;
    p.densityScale = dens;
    return p;
}

Primitive
cylinder(Vec3 c, float r, float half_height, Vec3 col, float dens = 40.0f)
{
    Primitive p;
    p.kind = Primitive::Kind::Cylinder;
    p.center = c;
    p.radius = r;
    p.halfExtent = Vec3(0.0f, half_height, 0.0f);
    p.baseColor = col;
    p.densityScale = dens;
    return p;
}

} // namespace

const std::vector<std::string> &
syntheticSceneNames()
{
    static const std::vector<std::string> names = {
        "chair", "drums", "ficus", "hotdog",
        "lego", "materials", "mic", "ship",
    };
    return names;
}

ScenePtr
makeSyntheticScene(const std::string &name)
{
    const Vec3 mid(0.5f, 0.5f, 0.5f);

    if (name == "chair") {
        // Seat, back, four legs.
        std::vector<Primitive> prims = {
            box({0.5f, 0.45f, 0.5f}, {0.16f, 0.02f, 0.16f},
                {0.70f, 0.45f, 0.20f}),
            box({0.5f, 0.60f, 0.36f}, {0.16f, 0.15f, 0.02f},
                {0.72f, 0.48f, 0.22f}),
            cylinder({0.38f, 0.33f, 0.38f}, 0.02f, 0.11f,
                     {0.45f, 0.28f, 0.12f}),
            cylinder({0.62f, 0.33f, 0.38f}, 0.02f, 0.11f,
                     {0.45f, 0.28f, 0.12f}),
            cylinder({0.38f, 0.33f, 0.62f}, 0.02f, 0.11f,
                     {0.45f, 0.28f, 0.12f}),
            cylinder({0.62f, 0.33f, 0.62f}, 0.02f, 0.11f,
                     {0.45f, 0.28f, 0.12f}),
        };
        return std::make_shared<PrimitiveScene>("chair", prims, 7.0f);
    }
    if (name == "drums") {
        std::vector<Primitive> prims = {
            cylinder({0.40f, 0.46f, 0.45f}, 0.11f, 0.06f,
                     {0.80f, 0.15f, 0.15f}),
            cylinder({0.63f, 0.43f, 0.55f}, 0.09f, 0.05f,
                     {0.15f, 0.20f, 0.75f}),
            cylinder({0.52f, 0.40f, 0.33f}, 0.07f, 0.07f,
                     {0.85f, 0.75f, 0.20f}),
            sphere({0.35f, 0.62f, 0.60f}, 0.06f, {0.85f, 0.82f, 0.60f}),
            sphere({0.68f, 0.60f, 0.38f}, 0.05f, {0.85f, 0.82f, 0.60f}),
        };
        return std::make_shared<PrimitiveScene>("drums", prims, 11.0f);
    }
    if (name == "ficus") {
        // Pot, trunk, and a cloud of leaf spheres (fine structure).
        std::vector<Primitive> prims = {
            cylinder({0.5f, 0.30f, 0.5f}, 0.08f, 0.06f,
                     {0.55f, 0.30f, 0.18f}),
            cylinder({0.5f, 0.45f, 0.5f}, 0.015f, 0.12f,
                     {0.40f, 0.26f, 0.13f}),
        };
        // Deterministic pseudo-random leaf cloud.
        uint32_t s = 12345;
        auto fr = [&s]() {
            s = s * 1664525u + 1013904223u;
            return static_cast<float>(s >> 8) * 0x1p-24f;
        };
        for (int i = 0; i < 24; i++) {
            Vec3 c(0.5f + 0.16f * (fr() - 0.5f) * 2.0f,
                   0.60f + 0.12f * (fr() - 0.5f) * 2.0f,
                   0.5f + 0.16f * (fr() - 0.5f) * 2.0f);
            prims.push_back(sphere(c, 0.020f + 0.015f * fr(),
                                   {0.10f, 0.45f + 0.25f * fr(), 0.12f}));
        }
        return std::make_shared<PrimitiveScene>("ficus", prims, 13.0f);
    }
    if (name == "hotdog") {
        std::vector<Primitive> prims = {
            box({0.5f, 0.40f, 0.5f}, {0.20f, 0.02f, 0.12f},
                {0.92f, 0.92f, 0.85f}),
            cylinder({0.42f, 0.46f, 0.5f}, 0.035f, 0.14f,
                     {0.80f, 0.35f, 0.12f}),
            cylinder({0.58f, 0.46f, 0.5f}, 0.035f, 0.14f,
                     {0.80f, 0.35f, 0.12f}),
            torus({0.5f, 0.52f, 0.5f}, 0.05f, 0.012f,
                  {0.95f, 0.85f, 0.20f}),
        };
        return std::make_shared<PrimitiveScene>("hotdog", prims, 8.0f);
    }
    if (name == "lego") {
        // Studded brick assembly (boxy, sharp edges).
        std::vector<Primitive> prims = {
            box({0.5f, 0.40f, 0.5f}, {0.18f, 0.05f, 0.10f},
                {0.85f, 0.70f, 0.10f}),
            box({0.44f, 0.52f, 0.5f}, {0.10f, 0.05f, 0.08f},
                {0.85f, 0.70f, 0.10f}),
            box({0.60f, 0.52f, 0.46f}, {0.05f, 0.05f, 0.05f},
                {0.30f, 0.30f, 0.32f}),
        };
        for (int i = 0; i < 4; i++) {
            prims.push_back(cylinder(
                {0.36f + 0.09f * i, 0.475f, 0.5f}, 0.02f, 0.012f,
                {0.85f, 0.70f, 0.10f}));
        }
        return std::make_shared<PrimitiveScene>("lego", prims, 15.0f);
    }
    if (name == "materials") {
        // A row of differently colored balls (the shiny-materials scene).
        std::vector<Primitive> prims;
        const Vec3 colors[6] = {
            {0.85f, 0.15f, 0.12f}, {0.15f, 0.65f, 0.20f},
            {0.15f, 0.25f, 0.85f}, {0.90f, 0.80f, 0.15f},
            {0.75f, 0.20f, 0.75f}, {0.85f, 0.85f, 0.88f},
        };
        for (int i = 0; i < 6; i++) {
            float fx = 0.28f + 0.088f * i;
            float fz = (i % 2) ? 0.42f : 0.58f;
            prims.push_back(sphere({fx, 0.42f, fz}, 0.055f, colors[i]));
        }
        return std::make_shared<PrimitiveScene>("materials", prims, 6.0f,
                                                0.30f);
    }
    if (name == "mic") {
        std::vector<Primitive> prims = {
            sphere({0.5f, 0.62f, 0.5f}, 0.07f, {0.75f, 0.75f, 0.78f}),
            cylinder({0.5f, 0.45f, 0.5f}, 0.018f, 0.12f,
                     {0.35f, 0.35f, 0.38f}),
            torus({0.5f, 0.33f, 0.5f}, 0.09f, 0.015f,
                  {0.30f, 0.30f, 0.33f}),
        };
        return std::make_shared<PrimitiveScene>("mic", prims, 18.0f, 0.25f);
    }
    if (name == "ship") {
        std::vector<Primitive> prims = {
            box({0.5f, 0.38f, 0.5f}, {0.22f, 0.045f, 0.09f},
                {0.50f, 0.32f, 0.18f}),
            box({0.5f, 0.45f, 0.5f}, {0.12f, 0.03f, 0.06f},
                {0.58f, 0.40f, 0.24f}),
            cylinder({0.44f, 0.58f, 0.5f}, 0.012f, 0.12f,
                     {0.35f, 0.25f, 0.15f}),
            cylinder({0.58f, 0.55f, 0.5f}, 0.012f, 0.09f,
                     {0.35f, 0.25f, 0.15f}),
            box({0.44f, 0.58f, 0.5f}, {0.001f, 0.06f, 0.05f},
                {0.90f, 0.88f, 0.80f}, 25.0f),
        };
        return std::make_shared<PrimitiveScene>("ship", prims, 10.0f);
    }

    fatal("unknown synthetic scene name: " + name);
}

ScenePtr
makeSilvrScene(int variant)
{
    // Large-volume plenoptic content: objects distributed through most of
    // the volume plus a thin enclosing shell (the environment).
    std::vector<Primitive> prims;
    uint32_t s = 777u + static_cast<uint32_t>(variant) * 9176u;
    auto fr = [&s]() {
        s = s * 1664525u + 1013904223u;
        return static_cast<float>(s >> 8) * 0x1p-24f;
    };
    for (int i = 0; i < 14; i++) {
        Vec3 c(0.12f + 0.76f * fr(), 0.12f + 0.76f * fr(),
               0.12f + 0.76f * fr());
        Vec3 col(0.25f + 0.7f * fr(), 0.25f + 0.7f * fr(),
                 0.25f + 0.7f * fr());
        if (i % 3 == 0)
            prims.push_back(box(c, Vec3(0.03f + 0.05f * fr(),
                                        0.03f + 0.05f * fr(),
                                        0.03f + 0.05f * fr()), col));
        else if (i % 3 == 1)
            prims.push_back(sphere(c, 0.03f + 0.05f * fr(), col));
        else
            prims.push_back(cylinder(c, 0.02f + 0.03f * fr(),
                                     0.04f + 0.06f * fr(), col));
    }
    // Environment shell: floor plane.
    prims.push_back(box({0.5f, 0.06f, 0.5f}, {0.46f, 0.02f, 0.46f},
                        {0.42f, 0.44f, 0.40f}, 30.0f));
    return std::make_shared<PrimitiveScene>(
        "silvr_" + std::to_string(variant), prims, 5.0f);
}

ScenePtr
makeScanNetScene(int variant)
{
    // Indoor room: floor, two walls, furniture-scale boxes.
    std::vector<Primitive> prims = {
        box({0.5f, 0.08f, 0.5f}, {0.45f, 0.02f, 0.45f},
            {0.55f, 0.50f, 0.45f}, 35.0f),
        box({0.08f, 0.5f, 0.5f}, {0.02f, 0.42f, 0.45f},
            {0.75f, 0.73f, 0.68f}, 35.0f),
        box({0.5f, 0.5f, 0.08f}, {0.45f, 0.42f, 0.02f},
            {0.72f, 0.70f, 0.66f}, 35.0f),
    };
    uint32_t s = 424u + static_cast<uint32_t>(variant) * 31337u;
    auto fr = [&s]() {
        s = s * 1664525u + 1013904223u;
        return static_cast<float>(s >> 8) * 0x1p-24f;
    };
    for (int i = 0; i < 6; i++) {
        Vec3 c(0.22f + 0.6f * fr(), 0.14f + 0.18f * fr(),
               0.22f + 0.6f * fr());
        Vec3 half(0.05f + 0.08f * fr(), 0.04f + 0.10f * fr(),
                  0.05f + 0.08f * fr());
        Vec3 col(0.35f + 0.4f * fr(), 0.30f + 0.35f * fr(),
                 0.28f + 0.35f * fr());
        prims.push_back(box(c, half, col));
    }
    return std::make_shared<PrimitiveScene>(
        "scannet_" + std::to_string(variant), prims, 4.0f, 0.08f);
}

} // namespace instant3d
