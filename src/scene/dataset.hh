/**
 * @file
 * Ground-truth dataset rendering: posed RGB (and depth) views of an
 * analytic Scene produced by fine-step ray marching of the true radiance
 * field with the classical volume-rendering integral (paper Eq. 1).
 *
 * These views stand in for the NeRF-Synthetic / SILVR / ScanNet captures
 * (see DESIGN.md, substitution table).
 */

#ifndef INSTANT3D_SCENE_DATASET_HH
#define INSTANT3D_SCENE_DATASET_HH

#include <vector>

#include "scene/camera.hh"
#include "scene/image.hh"
#include "scene/scene.hh"

namespace instant3d {

/** One posed view: camera, RGB image, and a per-pixel depth map. */
struct View
{
    Camera camera;
    Image rgb;
    std::vector<float> depth; // expected ray distance, row-major
};

/** Options controlling ground-truth rendering. */
struct RenderOptions
{
    float tNear = 0.05f;     //!< Ray-march start distance.
    float tFar = 2.2f;       //!< Ray-march end distance.
    int numSteps = 192;      //!< Uniform steps along each ray.
    Vec3 background{0, 0, 0};//!< Composited behind transparent rays.
};

/**
 * Volume-render one ray against the analytic scene.
 *
 * @param[out] out_depth  Expected termination distance (transmittance-
 *                        weighted t), if non-null.
 * @return Composited RGB.
 */
Vec3 renderRayGroundTruth(const Scene &scene, const Ray &ray,
                          const RenderOptions &opts,
                          float *out_depth = nullptr);

/** Render a full view (image + depth) from a camera. */
View renderViewGroundTruth(const Scene &scene, const Camera &camera,
                           const RenderOptions &opts);

/**
 * A train/test split of ground-truth views of one scene, the shape the
 * NeRF trainer consumes (paper Step 1 samples pixels from trainViews).
 */
struct Dataset
{
    ScenePtr scene;
    std::vector<View> trainViews;
    std::vector<View> testViews;
    RenderOptions renderOpts;
};

/** Parameters for dataset generation. */
struct DatasetConfig
{
    int numTrainViews = 12;
    int numTestViews = 3;
    int imageWidth = 40;
    int imageHeight = 40;
    float cameraRadius = 1.15f;
    RenderOptions renderOpts;
};

/** Build a dataset by rendering orbit views of the scene. */
Dataset makeDataset(ScenePtr scene, const DatasetConfig &config);

} // namespace instant3d

#endif // INSTANT3D_SCENE_DATASET_HH
