/**
 * @file
 * Float RGB image container, PSNR metrics (the paper's reconstruction-
 * quality measure), and PPM export for eyeballing results.
 */

#ifndef INSTANT3D_SCENE_IMAGE_HH
#define INSTANT3D_SCENE_IMAGE_HH

#include <string>
#include <vector>

#include "common/vec3.hh"

namespace instant3d {

/** Row-major float RGB image with channels in [0, 1]. */
class Image
{
  public:
    Image() = default;
    Image(int w, int h) : imgWidth(w), imgHeight(h)
    { pixels.assign(static_cast<size_t>(w) * h, Vec3()); }

    int width() const { return imgWidth; }
    int height() const { return imgHeight; }
    bool empty() const { return pixels.empty(); }

    const Vec3 &at(int col, int row) const
    { return pixels[static_cast<size_t>(row) * imgWidth + col]; }

    Vec3 &
    at(int col, int row)
    {
        return pixels[static_cast<size_t>(row) * imgWidth + col];
    }

    const std::vector<Vec3> &data() const { return pixels; }

    /** Write an 8-bit binary PPM (P6). Returns false on I/O failure. */
    bool writePpm(const std::string &path) const;

  private:
    int imgWidth = 0;
    int imgHeight = 0;
    std::vector<Vec3> pixels;
};

/**
 * Peak signal-to-noise ratio between two same-sized RGB images, peak 1.0:
 * PSNR = -10 log10(MSE). Identical images return +inf-capped 99 dB.
 */
double psnr(const Image &a, const Image &b);

/**
 * PSNR between two scalar maps (e.g. depth images) normalized by the
 * given peak value.
 */
double psnrScalar(const std::vector<float> &a, const std::vector<float> &b,
                  float peak);

/** Mean squared error over all channels of two same-sized images. */
double mse(const Image &a, const Image &b);

/**
 * Structural similarity index (SSIM, Wang et al. 2004) between two
 * same-sized RGB images, averaged over channels, computed with the
 * standard 8x8 windows and K1 = 0.01, K2 = 0.03 at peak 1.0. Returns
 * a value in [-1, 1]; 1 means identical.
 */
double ssim(const Image &a, const Image &b);

} // namespace instant3d

#endif // INSTANT3D_SCENE_IMAGE_HH
