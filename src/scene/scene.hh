/**
 * @file
 * Analytic volumetric scenes used as the ground-truth substitute for the
 * NeRF-Synthetic / SILVR / ScanNet capture datasets.
 *
 * A Scene exposes the true radiance field: a density sigma(p) and a
 * view-dependent color c(p, d) over the unit cube [0,1]^3. Ground-truth
 * training/test views are rendered by ray-marching these fields directly
 * (scene/dataset.hh), so the NeRF trainer consumes exactly the kind of
 * posed RGB images the paper's datasets provide.
 */

#ifndef INSTANT3D_SCENE_SCENE_HH
#define INSTANT3D_SCENE_SCENE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/vec3.hh"

namespace instant3d {

/**
 * Abstract analytic radiance field over the unit cube.
 */
class Scene
{
  public:
    virtual ~Scene() = default;

    /** Dataset-style scene name ("lego", "ficus", ...). */
    virtual std::string name() const = 0;

    /**
     * Volume density at p (non-negative; 0 means empty space).
     * Positions outside [0,1]^3 must return 0.
     */
    virtual float density(const Vec3 &p) const = 0;

    /**
     * Emitted RGB color at p seen from direction d, each channel
     * in [0, 1].
     */
    virtual Vec3 color(const Vec3 &p, const Vec3 &d) const = 0;
};

using ScenePtr = std::shared_ptr<Scene>;

/**
 * Factory for the eight NeRF-Synthetic-like procedural scenes
 * ("chair", "drums", "ficus", "hotdog", "lego", "materials", "mic",
 * "ship"); each is a distinct arrangement of primitive solids chosen so
 * the occupancy statistics (fraction of the volume that is non-empty,
 * fine structure vs. big blobs) vary the way the real scenes do.
 *
 * Throws via fatal() on an unknown name.
 */
ScenePtr makeSyntheticScene(const std::string &name);

/** All eight NeRF-Synthetic-like scene names, in canonical order. */
const std::vector<std::string> &syntheticSceneNames();

/**
 * SILVR-like large-volume plenoptic scene: content spread through a much
 * larger fraction of the volume with an enclosing environment shell.
 * @param variant selects one of several layouts (0..3).
 */
ScenePtr makeSilvrScene(int variant = 0);

/**
 * ScanNet-like indoor room: walls, floor, and furniture-scale boxes with
 * low-saturation colors, mimicking a real capture of a room.
 * @param variant selects one of several rooms (0..3).
 */
ScenePtr makeScanNetScene(int variant = 0);

} // namespace instant3d

#endif // INSTANT3D_SCENE_SCENE_HH
