#include "scene/image.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace instant3d {

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", imgWidth, imgHeight);
    for (const auto &p : pixels) {
        Vec3 c = clamp(p, 0.0f, 1.0f);
        unsigned char rgb[3] = {
            static_cast<unsigned char>(c.x * 255.0f + 0.5f),
            static_cast<unsigned char>(c.y * 255.0f + 0.5f),
            static_cast<unsigned char>(c.z * 255.0f + 0.5f),
        };
        std::fwrite(rgb, 1, 3, f);
    }
    std::fclose(f);
    return true;
}

double
mse(const Image &a, const Image &b)
{
    panicIf(a.width() != b.width() || a.height() != b.height(),
            "mse() on images of different sizes");
    panicIf(a.empty(), "mse() on empty images");
    double acc = 0.0;
    const auto &pa = a.data();
    const auto &pb = b.data();
    for (size_t i = 0; i < pa.size(); i++) {
        Vec3 d = pa[i] - pb[i];
        acc += d.x * d.x + d.y * d.y + d.z * d.z;
    }
    return acc / (3.0 * static_cast<double>(pa.size()));
}

double
psnr(const Image &a, const Image &b)
{
    double err = mse(a, b);
    if (err <= 1e-12)
        return 99.0;
    return -10.0 * std::log10(err);
}

double
ssim(const Image &a, const Image &b)
{
    panicIf(a.width() != b.width() || a.height() != b.height(),
            "ssim() on images of different sizes");
    panicIf(a.width() < 8 || a.height() < 8,
            "ssim() needs at least 8x8 images");

    constexpr double c1 = 0.01 * 0.01;
    constexpr double c2 = 0.03 * 0.03;
    constexpr int win = 8;

    double total = 0.0;
    int windows = 0;
    for (int wy = 0; wy + win <= a.height(); wy += win) {
        for (int wx = 0; wx + win <= a.width(); wx += win) {
            for (int ch = 0; ch < 3; ch++) {
                double mu_a = 0, mu_b = 0;
                for (int y = 0; y < win; y++) {
                    for (int x = 0; x < win; x++) {
                        mu_a += a.at(wx + x, wy + y)[ch];
                        mu_b += b.at(wx + x, wy + y)[ch];
                    }
                }
                const double n = win * win;
                mu_a /= n;
                mu_b /= n;
                double var_a = 0, var_b = 0, cov = 0;
                for (int y = 0; y < win; y++) {
                    for (int x = 0; x < win; x++) {
                        double da = a.at(wx + x, wy + y)[ch] - mu_a;
                        double db = b.at(wx + x, wy + y)[ch] - mu_b;
                        var_a += da * da;
                        var_b += db * db;
                        cov += da * db;
                    }
                }
                var_a /= n - 1;
                var_b /= n - 1;
                cov /= n - 1;
                total += (2 * mu_a * mu_b + c1) * (2 * cov + c2) /
                         ((mu_a * mu_a + mu_b * mu_b + c1) *
                          (var_a + var_b + c2));
                windows++;
            }
        }
    }
    panicIf(windows == 0, "ssim() produced no windows");
    return total / windows;
}

double
psnrScalar(const std::vector<float> &a, const std::vector<float> &b,
           float peak)
{
    panicIf(a.size() != b.size() || a.empty(),
            "psnrScalar() size mismatch");
    panicIf(peak <= 0.0f, "psnrScalar() needs a positive peak");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); i++) {
        double d = (static_cast<double>(a[i]) - b[i]) / peak;
        acc += d * d;
    }
    double err = acc / static_cast<double>(a.size());
    if (err <= 1e-12)
        return 99.0;
    return -10.0 * std::log10(err);
}

} // namespace instant3d
