#include "devices/registry.hh"

namespace instant3d {

/*
 * Calibration notes (see DESIGN.md): the base efficiencies and host
 * overheads below are fitted so that Instant-NGP training of the
 * NeRF-Synthetic workload (200k point queries/iter, 256 iterations,
 * 2^19-entry per-level tables) reproduces the paper's measured anchors:
 * ~72 s on Xavier NX (Tab 1/4), with Step 3-1 + BP at ~80% of runtime
 * on every device (Fig 4), and the Fig 16 device ordering
 * (Nano ~358 s, TX2 ~211 s at 224x/132x vs the 1.6 s accelerator).
 * Everything else (Tab 1, Tab 2, Tab 4, Tab 5, Fig 7) is derived by
 * re-running the model on modified workloads.
 */

const GpuDeviceModel &
jetsonNano()
{
    static const GpuDeviceModel model(
        DeviceSpec{
            .name = "Jetson Nano",
            .technologyNm = 20,
            .sramMB = 2.5,
            .areaMm2 = 118.0,
            .frequencyGHz = 0.9,
            .dramType = "LPDDR4-1600",
            .dramBandwidthGBs = 25.6,
            .typicalPowerW = 10.0,
            .peakFp16Gflops = 472.0,
        },
        GpuModelParams{
            .randReadEff = 0.00513,
            .atomicWriteEff = 0.01194,
            .mlpUtilization = 0.1666,
            .hostSecondsPerIter = 0.075,
            .cacheAlpha = 0.125,
        });
    return model;
}

const GpuDeviceModel &
jetsonTx2()
{
    static const GpuDeviceModel model(
        DeviceSpec{
            .name = "Jetson TX2",
            .technologyNm = 16,
            .sramMB = 5.0,
            .areaMm2 = 0.0, // unpublished in Tab 3
            .frequencyGHz = 1.4,
            .dramType = "LPDDR4-1866",
            .dramBandwidthGBs = 59.7,
            .typicalPowerW = 15.0,
            .peakFp16Gflops = 1330.0,
        },
        GpuModelParams{
            .randReadEff = 0.003536,
            .atomicWriteEff = 0.008246,
            .mlpUtilization = 0.1,
            .hostSecondsPerIter = 0.008,
            .cacheAlpha = 0.125,
        });
    return model;
}

const GpuDeviceModel &
xavierNx()
{
    static const GpuDeviceModel model(
        DeviceSpec{
            .name = "Xavier NX",
            .technologyNm = 12,
            .sramMB = 11.0,
            .areaMm2 = 350.0,
            .frequencyGHz = 1.1,
            .dramType = "LPDDR4-1866",
            .dramBandwidthGBs = 59.7,
            .typicalPowerW = 20.0,
            .peakFp16Gflops = 6000.0,
        },
        GpuModelParams{
            .randReadEff = 0.01072,
            .atomicWriteEff = 0.02486,
            .mlpUtilization = 0.0794,
            .hostSecondsPerIter = 0.0165,
            .cacheAlpha = 0.125,
        });
    return model;
}

std::vector<const GpuDeviceModel *>
baselineDevices()
{
    return {&jetsonNano(), &jetsonTx2(), &xavierNx()};
}

const DeviceSpec &
instant3dAcceleratorSpec()
{
    static const DeviceSpec spec{
        .name = "Instant-3D",
        .technologyNm = 28,
        .sramMB = 1.5,
        .areaMm2 = 6.8,
        .frequencyGHz = 0.8,
        .dramType = "LPDDR4-1866",
        .dramBandwidthGBs = 59.7,
        .typicalPowerW = 1.9,
        .peakFp16Gflops = 0.0, // set by the accelerator model
    };
    return spec;
}

} // namespace instant3d
