/**
 * @file
 * The evaluated devices (paper Tab 3): Jetson Nano, Jetson TX2, Xavier
 * NX — each with a calibrated GpuDeviceModel — and the Instant-3D
 * accelerator's specification (its runtime comes from the cycle
 * simulator in src/accel, not from a GPU model).
 */

#ifndef INSTANT3D_DEVICES_REGISTRY_HH
#define INSTANT3D_DEVICES_REGISTRY_HH

#include <vector>

#include "devices/gpu_model.hh"

namespace instant3d {

/** Jetson Nano: 20 nm, 10 W, LPDDR4-1600 (25.6 GB/s). */
const GpuDeviceModel &jetsonNano();

/** Jetson TX2: 16 nm, 15 W, LPDDR4-1866 (59.7 GB/s). */
const GpuDeviceModel &jetsonTx2();

/** Xavier NX: 12 nm, 20 W, LPDDR4-1866 (59.7 GB/s). */
const GpuDeviceModel &xavierNx();

/** All three baseline GPU models, in Tab 3 order. */
std::vector<const GpuDeviceModel *> baselineDevices();

/**
 * The Instant-3D accelerator's specification as published: 28 nm,
 * 6.8 mm^2, 1 V, 800 MHz, 1.5 MB SRAM, 1.9 W, LPDDR4-1866.
 */
const DeviceSpec &instant3dAcceleratorSpec();

} // namespace instant3d

#endif // INSTANT3D_DEVICES_REGISTRY_HH
