/**
 * @file
 * Analytic roofline model of NeRF training on a commercial edge GPU.
 *
 * Each pipeline step is modelled as the slower of its compute and memory
 * demands with per-device efficiency factors. The embedding-grid steps
 * are memory-bound random accesses whose effective bandwidth improves
 * when the (per-level) hash table is small enough to cache well; the
 * locality exponent and base efficiencies are calibrated once, against
 * the paper's published Instant-NGP anchors (see DESIGN.md substitution
 * table), and every other number in the benches is derived.
 */

#ifndef INSTANT3D_DEVICES_GPU_MODEL_HH
#define INSTANT3D_DEVICES_GPU_MODEL_HH

#include "devices/device.hh"

namespace instant3d {

/** Calibration constants of one device's execution model. */
struct GpuModelParams
{
    double randReadEff = 0.01;    //!< Grid-read bandwidth efficiency.
    double atomicWriteEff = 0.02; //!< Grid-update bandwidth efficiency.
    double mlpUtilization = 0.1;  //!< Fp16 utilization on tiny MLPs.
    double hostSecondsPerIter = 0.01; //!< Steps 1-2 and 4-5 overhead.
    double cacheAlpha = 0.125;    //!< Table-size locality exponent.
    double refTableBytes = (1ull << 19) * 4.0; //!< NGP per-level table.
};

/**
 * Runtime/energy model of one GPU device.
 */
class GpuDeviceModel
{
  public:
    GpuDeviceModel(const DeviceSpec &spec, const GpuModelParams &params);

    const DeviceSpec &spec() const { return deviceSpec; }
    const GpuModelParams &params() const { return modelParams; }

    /** Per-step seconds per training iteration for a workload. */
    StepBreakdown breakdown(const TrainingWorkload &workload) const;

    /** End-to-end training seconds (all iterations). */
    double trainingSeconds(const TrainingWorkload &workload) const;

    /** Training energy in joules (typical power x runtime). */
    double trainingEnergyJoules(const TrainingWorkload &workload) const;

  private:
    /** Locality speedup factor for a per-level table of `bytes`. */
    double tableLocalityBoost(double bytes) const;

    DeviceSpec deviceSpec;
    GpuModelParams modelParams;
};

} // namespace instant3d

#endif // INSTANT3D_DEVICES_GPU_MODEL_HH
