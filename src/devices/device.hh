/**
 * @file
 * Device specifications (paper Tab 3) and the per-step runtime breakdown
 * container shared by the GPU device models and the accelerator.
 */

#ifndef INSTANT3D_DEVICES_DEVICE_HH
#define INSTANT3D_DEVICES_DEVICE_HH

#include <array>
#include <string>

#include "core/workload.hh"

namespace instant3d {

/** Static hardware specification of one evaluated device (Tab 3). */
struct DeviceSpec
{
    std::string name;
    int technologyNm = 0;
    double sramMB = 0.0;
    double areaMm2 = 0.0;     //!< 0 when unpublished (TX2).
    double frequencyGHz = 0.0;
    std::string dramType;
    double dramBandwidthGBs = 0.0;
    double typicalPowerW = 0.0;
    double peakFp16Gflops = 0.0;
};

/**
 * Seconds per training iteration attributed to each pipeline step.
 */
class StepBreakdown
{
  public:
    double &operator[](PipelineStep s)
    { return seconds[static_cast<size_t>(s)]; }
    double operator[](PipelineStep s) const
    { return seconds[static_cast<size_t>(s)]; }

    /** Sum over all steps, seconds per iteration. */
    double totalPerIter() const;

    /** Fraction of the iteration spent in the given step. */
    double fraction(PipelineStep s) const;

    /** Fraction spent in Step 3-1 plus its back-propagation (Fig 4). */
    double gridShare() const;

  private:
    std::array<double, 6> seconds{};
};

} // namespace instant3d

#endif // INSTANT3D_DEVICES_DEVICE_HH
