#include "devices/gpu_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

double
StepBreakdown::totalPerIter() const
{
    double total = 0.0;
    for (double s : seconds)
        total += s;
    return total;
}

double
StepBreakdown::fraction(PipelineStep s) const
{
    double total = totalPerIter();
    if (total <= 0.0)
        return 0.0;
    return (*this)[s] / total;
}

double
StepBreakdown::gridShare() const
{
    double total = totalPerIter();
    if (total <= 0.0)
        return 0.0;
    return ((*this)[PipelineStep::GridInterpFF] +
            (*this)[PipelineStep::GridInterpBP]) / total;
}

GpuDeviceModel::GpuDeviceModel(const DeviceSpec &spec,
                               const GpuModelParams &params)
    : deviceSpec(spec), modelParams(params)
{
    fatalIf(spec.dramBandwidthGBs <= 0.0, "device needs DRAM bandwidth");
    fatalIf(spec.peakFp16Gflops <= 0.0, "device needs peak flops");
}

double
GpuDeviceModel::tableLocalityBoost(double bytes) const
{
    fatalIf(bytes <= 0.0, "table bytes must be positive");
    // Smaller tables cache better; boost saturates below 64 KB (the
    // table then lives entirely in L2/shared memory).
    double ratio = modelParams.refTableBytes / bytes;
    ratio = std::min(ratio, 32.0);
    return std::pow(ratio, modelParams.cacheAlpha);
}

StepBreakdown
GpuDeviceModel::breakdown(const TrainingWorkload &w) const
{
    StepBreakdown out;
    const double bw = deviceSpec.dramBandwidthGBs * 1e9;
    const double peak = deviceSpec.peakFp16Gflops * 1e9;

    // Steps 1-2 and 4-5: launch overheads plus light per-ray math,
    // split between the two host phases.
    double host_flops_time =
        w.hostFlopsPerIter / (peak * modelParams.mlpUtilization);
    out[PipelineStep::SampleAndRays] =
        0.45 * modelParams.hostSecondsPerIter + 0.5 * host_flops_time;
    out[PipelineStep::RenderAndLoss] =
        0.55 * modelParams.hostSecondsPerIter + 0.5 * host_flops_time;

    // Step 3-1 and its BP: random-access memory bound, per branch.
    double ff = 0.0, bp = 0.0;
    for (const auto &b : w.branches) {
        double boost = tableLocalityBoost(
            static_cast<double>(b.tableBytes()));
        double read_bytes = b.costShare * w.pointsPerIter *
                            b.accessesPerPoint() * b.featuresPerEntry *
                            2.0;
        ff += read_bytes / (bw * modelParams.randReadEff * boost);
        bp += b.updateRate * read_bytes /
              (bw * modelParams.atomicWriteEff * boost);
    }
    out[PipelineStep::GridInterpFF] = ff;
    out[PipelineStep::GridInterpBP] = bp;

    // Step 3-2: compute-bound tiny MLPs.
    out[PipelineStep::MlpFF] =
        w.mlpFlopsPerIterFF() / (peak * modelParams.mlpUtilization);
    out[PipelineStep::MlpBP] =
        w.mlpFlopsPerIterBP() / (peak * modelParams.mlpUtilization);

    return out;
}

double
GpuDeviceModel::trainingSeconds(const TrainingWorkload &w) const
{
    return breakdown(w).totalPerIter() * w.iterations;
}

double
GpuDeviceModel::trainingEnergyJoules(const TrainingWorkload &w) const
{
    return trainingSeconds(w) * deviceSpec.typicalPowerW;
}

} // namespace instant3d
