/**
 * @file
 * Lightweight statistics containers used by the trace analyzer and the
 * accelerator simulator: running mean/variance, fixed-bin histograms,
 * and percentile extraction.
 */

#ifndef INSTANT3D_COMMON_STATS_HH
#define INSTANT3D_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace instant3d {

/**
 * Monotonic wall-clock seconds (std::chrono::steady_clock). The one
 * shared time source for phase instrumentation, service latency
 * accounting, and bench timing.
 */
double monotonicSeconds();

/**
 * Welford running mean/variance accumulator.
 * Numerically stable for long traces (hundreds of millions of samples).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;
    double stddev() const;

    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &o);

  private:
    uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Fixed-width-bin histogram over a closed interval [lo, hi]; samples
 * outside the interval land in saturating under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo_bound  Left edge of the tracked interval.
     * @param hi_bound  Right edge of the tracked interval.
     * @param num_bins  Number of equal-width bins (>= 1).
     */
    Histogram(double lo_bound, double hi_bound, int num_bins);

    void add(double x);

    uint64_t totalCount() const { return total; }
    uint64_t underflowCount() const { return underflow; }
    uint64_t overflowCount() const { return overflow; }
    uint64_t binCount(int bin) const { return bins.at(bin); }
    int numBins() const { return static_cast<int>(bins.size()); }

    /** Left edge of the given bin. */
    double binLeft(int bin) const;
    double binWidth() const { return width; }

    /**
     * Fraction of all samples (including out-of-range ones in the
     * denominator) falling inside [a, b], counting every bin whose
     * center lies in the interval.
     */
    double fractionInRange(double a, double b) const;

    /** Render a fixed-width ASCII bar chart, one row per bin. */
    std::string toAscii(int bar_width = 40) const;

  private:
    double lo, hi, width;
    std::vector<uint64_t> bins;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    uint64_t total = 0;
};

/**
 * Exact percentile over a buffered sample set (sorts on demand).
 * Suitable for the bounded-size samples used in the benches.
 */
class PercentileTracker
{
  public:
    void add(double x) { samples.push_back(x); }

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    size_t count() const { return samples.size(); }

  private:
    mutable std::vector<double> samples;
};

} // namespace instant3d

#endif // INSTANT3D_COMMON_STATS_HH
