/**
 * @file
 * Minimal 3-component float vector used throughout the scene, NeRF, and
 * trace layers. Header-only by design: every operation is a few flops.
 */

#ifndef INSTANT3D_COMMON_VEC3_HH
#define INSTANT3D_COMMON_VEC3_HH

#include <cmath>

namespace instant3d {

/**
 * A 3-vector of floats with the usual component-wise algebra.
 * Used both for spatial positions/directions and for RGB colors.
 */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Vec3() = default;
    Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}

    /** Broadcast constructor: all three components set to s. */
    explicit Vec3(float s) : x(s), y(s), z(s) {}

    Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    Vec3 operator-() const { return {-x, -y, -z}; }

    /** Component-wise (Hadamard) product; used for color modulation. */
    Vec3 operator*(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    Vec3 &
    operator*=(float s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }

    float dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    float norm() const { return std::sqrt(dot(*this)); }
    float squaredNorm() const { return dot(*this); }

    /** Unit-length copy; returns +x axis for the zero vector. */
    Vec3
    normalized() const
    {
        float n = norm();
        if (n <= 0.0f)
            return {1.0f, 0.0f, 0.0f};
        return *this / n;
    }

    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    float &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    /** Largest of the three components. */
    float maxComponent() const
    { return std::fmax(x, std::fmax(y, z)); }

    /** Smallest of the three components. */
    float minComponent() const
    { return std::fmin(x, std::fmin(y, z)); }
};

inline Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

/** Component-wise clamp of v into [lo, hi]. */
inline Vec3
clamp(const Vec3 &v, float lo, float hi)
{
    auto c = [lo, hi](float a) {
        return a < lo ? lo : (a > hi ? hi : a);
    };
    return {c(v.x), c(v.y), c(v.z)};
}

/** Linear interpolation between a (t=0) and b (t=1). */
inline Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

} // namespace instant3d

#endif // INSTANT3D_COMMON_VEC3_HH
