#include "common/fault_injection.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace instant3d {
namespace fault {

namespace detail {
// Constant-initialized, so safe to touch from any static initializer
// (including the env arming below).
std::atomic<uint32_t> armedMask{0};
} // namespace detail

namespace {

struct PointState
{
    Spec spec;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
};

std::mutex &
specMutex()
{
    static std::mutex m;
    return m;
}

PointState *
states()
{
    static PointState s[numPoints];
    return s;
}

const char *const pointNames[numPoints] = {
    "checkpoint.short_write", "checkpoint.short_read",
    "checkpoint.fsync_fail",  "checkpoint.crc_flip",
    "scheduler.stall",        "chunk.render_delay",
    "shard.fail",             "shard.stall",
    "shard.crash",            "checkpoint.stream_short_read",
    "checkpoint.stream_stall",
};

} // namespace

const char *
pointName(Point point)
{
    int i = static_cast<int>(point);
    return i >= 0 && i < numPoints ? pointNames[i] : "invalid";
}

bool
pointFromName(const std::string &name, Point &point)
{
    for (int i = 0; i < numPoints; i++) {
        if (name == pointNames[i]) {
            point = static_cast<Point>(i);
            return true;
        }
    }
    return false;
}

void
arm(Point point, const Spec &spec)
{
    const uint32_t bit = 1u << static_cast<int>(point);
    std::lock_guard<std::mutex> lock(specMutex());
    states()[static_cast<int>(point)].spec = spec;
    if (spec.mode == Mode::Off)
        detail::armedMask.fetch_and(~bit, std::memory_order_relaxed);
    else
        detail::armedMask.fetch_or(bit, std::memory_order_relaxed);
}

void
disarm(Point point)
{
    arm(point, Spec{});
}

void
disarmAll()
{
    std::lock_guard<std::mutex> lock(specMutex());
    for (int i = 0; i < numPoints; i++)
        states()[i].spec = Spec{};
    detail::armedMask.store(0, std::memory_order_relaxed);
}

uint64_t
hitCount(Point point)
{
    return states()[static_cast<int>(point)].hits.load(
        std::memory_order_relaxed);
}

uint64_t
fireCount(Point point)
{
    return states()[static_cast<int>(point)].fires.load(
        std::memory_order_relaxed);
}

void
resetCounts()
{
    for (int i = 0; i < numPoints; i++) {
        states()[i].hits.store(0, std::memory_order_relaxed);
        states()[i].fires.store(0, std::memory_order_relaxed);
    }
}

int
armedDelayMs(Point point)
{
    std::lock_guard<std::mutex> lock(specMutex());
    const Spec &spec = states()[static_cast<int>(point)].spec;
    return spec.mode == Mode::Off ? 0 : spec.delayMs;
}

bool
detail::fireSlow(Point point)
{
    PointState &st = states()[static_cast<int>(point)];
    // 1-based hit index: deterministic per point, so a (spec, hit)
    // pair always decides the same way.
    uint64_t hit = st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    Spec spec;
    {
        std::lock_guard<std::mutex> lock(specMutex());
        spec = st.spec;
    }
    bool fire = false;
    switch (spec.mode) {
    case Mode::Off:
    case Mode::Never:
        break;
    case Mode::Always:
        fire = true;
        break;
    case Mode::OneShot:
        fire = spec.n != 0 && hit == spec.n;
        break;
    case Mode::EveryN:
        fire = spec.n != 0 && hit % spec.n == 0;
        break;
    case Mode::Probability:
        fire = Rng::forIndex(spec.seed,
                             static_cast<uint64_t>(point), hit)
                   .nextFloat() < spec.probability;
        break;
    }
    if (fire)
        st.fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
}

bool
maybeDelay(Point point)
{
    if (!shouldFire(point))
        return false;
    int delay_ms = armedDelayMs(point);
    if (delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
    return true;
}

namespace {

/** Split `s` on `sep`, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseEntry(const std::string &entry)
{
    size_t eq = entry.find('=');
    if (eq == std::string::npos)
        return false;
    Point point;
    if (!pointFromName(entry.substr(0, eq), point))
        return false;

    std::vector<std::string> tok = split(entry.substr(eq + 1), ':');
    if (tok.empty())
        return false;

    Spec spec;
    size_t i = 0;
    try {
        if (tok[0] == "always") {
            spec.mode = Mode::Always;
            i = 1;
        } else if (tok[0] == "never") {
            spec.mode = Mode::Never;
            i = 1;
        } else if (tok[0] == "hit" && tok.size() > 1) {
            spec.mode = Mode::OneShot;
            spec.n = std::stoull(tok[1]);
            i = 2;
        } else if (tok[0] == "every" && tok.size() > 1) {
            spec.mode = Mode::EveryN;
            spec.n = std::stoull(tok[1]);
            i = 2;
        } else if (tok[0] == "prob" && tok.size() > 1) {
            spec.mode = Mode::Probability;
            spec.probability = std::stod(tok[1]);
            i = 2;
        } else {
            return false;
        }
        for (; i + 1 < tok.size(); i += 2) {
            if (tok[i] == "seed")
                spec.seed = std::stoull(tok[i + 1]);
            else if (tok[i] == "delay")
                spec.delayMs = std::stoi(tok[i + 1]);
            else
                return false;
        }
        if (i != tok.size()) // trailing key without a value
            return false;
    } catch (const std::exception &) {
        return false;
    }
    arm(point, spec);
    return true;
}

} // namespace

bool
armFromString(const std::string &config)
{
    bool all_ok = true;
    for (const std::string &entry : split(config, ',')) {
        if (!parseEntry(entry)) {
            warn("fault_injection: unparseable INSTANT3D_FAULTS entry '" +
                 entry + "' ignored");
            all_ok = false;
        }
    }
    return all_ok;
}

namespace {

// Environment arming runs at static-initialization time, before
// main(): armed points are live for the whole process without any
// per-site initialization check.
const bool envArmed = [] {
    const char *env = std::getenv("INSTANT3D_FAULTS");
    if (env && *env)
        armFromString(env);
    return true;
}();

} // namespace

} // namespace fault
} // namespace instant3d
