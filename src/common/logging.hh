/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * fatal()/panic()/warn()/inform() convention.
 *
 * fatal()  -- the run cannot continue because of a user error (bad
 *             configuration, invalid arguments); exits with code 1.
 * panic()  -- something happened that should never happen regardless of
 *             user input (an internal bug); aborts.
 * warn()   -- functionality may be imperfect but the run continues.
 * inform() -- plain status output.
 */

#ifndef INSTANT3D_COMMON_LOGGING_HH
#define INSTANT3D_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace instant3d {

/** Print an informational message to stdout. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report an unrecoverable user-level error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &msg);

/**
 * Assert-like invariant check that survives NDEBUG builds.
 * Calls panic() with the given message when the condition is false.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** fatal() when the condition holds. */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace instant3d

#endif // INSTANT3D_COMMON_LOGGING_HH
