/**
 * @file
 * Incremental CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320).
 *
 * Used by the checkpoint format (v3) to detect torn writes and bit
 * rot: the digest is accumulated over the header and payload as they
 * stream to or from disk, so verification costs one extra pass over
 * bytes that are already in cache.
 */

#ifndef INSTANT3D_COMMON_CRC32_HH
#define INSTANT3D_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace instant3d {

/** Streaming CRC-32 accumulator; value() is valid after any prefix. */
class Crc32
{
  public:
    void
    update(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        uint32_t c = ~crc;
        for (size_t i = 0; i < n; i++)
            c = table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
        crc = ~c;
    }

    uint32_t value() const { return crc; }

  private:
    static const uint32_t *
    table()
    {
        static const std::array<uint32_t, 256> tbl = [] {
            std::array<uint32_t, 256> t{};
            for (uint32_t i = 0; i < 256; i++) {
                uint32_t c = i;
                for (int k = 0; k < 8; k++)
                    c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                t[i] = c;
            }
            return t;
        }();
        return tbl.data();
    }

    uint32_t crc = 0;
};

} // namespace instant3d

#endif // INSTANT3D_COMMON_CRC32_HH
