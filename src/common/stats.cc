#include "common/stats.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace instant3d {

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    n++;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &o)
{
    if (o.n == 0)
        return;
    if (n == 0) {
        *this = o;
        return;
    }
    double delta = o.mu - mu;
    uint64_t total = n + o.n;
    double nf = static_cast<double>(n);
    double of = static_cast<double>(o.n);
    double tf = static_cast<double>(total);
    m2 += o.m2 + delta * delta * nf * of / tf;
    mu += delta * of / tf;
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
    n = total;
}

Histogram::Histogram(double lo_bound, double hi_bound, int num_bins)
    : lo(lo_bound), hi(hi_bound)
{
    panicIf(num_bins < 1, "Histogram needs at least one bin");
    panicIf(hi_bound <= lo_bound, "Histogram interval is empty");
    bins.assign(static_cast<size_t>(num_bins), 0);
    width = (hi - lo) / num_bins;
}

void
Histogram::add(double x)
{
    total++;
    if (x < lo) {
        underflow++;
        return;
    }
    if (x > hi) {
        overflow++;
        return;
    }
    auto bin = static_cast<size_t>((x - lo) / width);
    if (bin >= bins.size())
        bin = bins.size() - 1;
    bins[bin]++;
}

double
Histogram::binLeft(int bin) const
{
    return lo + width * bin;
}

double
Histogram::fractionInRange(double a, double b) const
{
    if (total == 0)
        return 0.0;
    uint64_t inside = 0;
    for (int i = 0; i < numBins(); i++) {
        double center = binLeft(i) + 0.5 * width;
        if (center >= a && center <= b)
            inside += bins[i];
    }
    return static_cast<double>(inside) / static_cast<double>(total);
}

std::string
Histogram::toAscii(int bar_width) const
{
    uint64_t peak = 1;
    for (uint64_t c : bins)
        peak = std::max(peak, c);

    std::ostringstream out;
    for (int i = 0; i < numBins(); i++) {
        double left = binLeft(i);
        int len = static_cast<int>(
            static_cast<double>(bins[i]) / static_cast<double>(peak) *
            bar_width);
        out << "  [" << left << ", " << left + width << ")  ";
        for (int j = 0; j < len; j++)
            out << '#';
        out << "  " << bins[i] << "\n";
    }
    return out.str();
}

double
PercentileTracker::percentile(double p) const
{
    panicIf(samples.empty(), "percentile() on empty sample set");
    std::sort(samples.begin(), samples.end());
    if (p <= 0.0)
        return samples.front();
    if (p >= 100.0)
        return samples.back();
    double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    auto idx = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(idx);
    if (idx + 1 >= samples.size())
        return samples.back();
    return samples[idx] * (1.0 - frac) + samples[idx + 1] * frac;
}

} // namespace instant3d
