#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace instant3d {

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    panicIf(header.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    panicIf(rows.empty(), "cell() before row()");
    panicIf(rows.back().size() >= header.size(),
            "more cells than columns in table row");
    rows.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(header.size(), 0);
    for (size_t c = 0; c < header.size(); c++)
        widths[c] = header[c].size();
    for (const auto &r : rows)
        for (size_t c = 0; c < r.size(); c++)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &r,
                        std::ostringstream &out) {
        for (size_t c = 0; c < header.size(); c++) {
            std::string v = c < r.size() ? r[c] : "";
            out << "  " << v;
            for (size_t pad = v.size(); pad < widths[c]; pad++)
                out << ' ';
        }
        out << "\n";
    };

    std::ostringstream out;
    emit_row(header, out);
    out << "  ";
    size_t line = 0;
    for (size_t c = 0; c < header.size(); c++)
        line += widths[c] + 2;
    for (size_t i = 0; i + 2 < line; i++)
        out << '-';
    out << "\n";
    for (const auto &r : rows)
        emit_row(r, out);
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    for (size_t c = 0; c < header.size(); c++)
        out << (c ? "," : "") << header[c];
    out << "\n";
    for (const auto &r : rows) {
        for (size_t c = 0; c < r.size(); c++)
            out << (c ? "," : "") << r[c];
        out << "\n";
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

void
printBanner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

} // namespace instant3d
