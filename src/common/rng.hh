/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * All stochastic components (pixel sampling, ray stratification, weight
 * init, procedural scenes) draw from explicitly seeded Rng instances so
 * that every experiment in the repository is bit-reproducible.
 */

#ifndef INSTANT3D_COMMON_RNG_HH
#define INSTANT3D_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace instant3d {

/**
 * PCG32 generator (O'Neill, 2014): 64-bit state, 32-bit output,
 * period 2^64. Small, fast, and statistically solid for simulation use.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional independent stream id. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state = 0u;
        inc = (stream << 1u) | 1u;
        nextU32();
        state += seed;
        nextU32();
    }

    /** Next raw 32-bit draw. */
    uint32_t
    nextU32()
    {
        uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform draw in [0, bound) without modulo bias. */
    uint32_t
    nextU32(uint32_t bound)
    {
        uint32_t threshold = (-bound) % bound;
        for (;;) {
            uint32_t r = nextU32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) * 0x1p-24f;
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /**
     * Standard normal draw via Box-Muller (one value per call; the
     * second value of each pair is cached).
     */
    float
    nextGaussian()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        float u1, u2;
        do {
            u1 = nextFloat();
        } while (u1 <= 1e-12f);
        u2 = nextFloat();
        float mag = std::sqrt(-2.0f * std::log(u1));
        constexpr float two_pi = 6.28318530717958647692f;
        spare = mag * std::sin(two_pi * u2);
        haveSpare = true;
        return mag * std::cos(two_pi * u2);
    }

    /**
     * Derive an independent, reproducible generator from a base seed
     * and two decorrelation indices (e.g. iteration and ray index).
     * Used by the parallel trainer: each ray draws from its own stream
     * keyed by (seed, iter, ray), so results do not depend on how rays
     * are distributed over threads.
     */
    static Rng
    forIndex(uint64_t seed, uint64_t a, uint64_t b)
    {
        uint64_t s = splitMix64(seed ^ splitMix64(a + 0x9e3779b97f4a7c15ULL));
        uint64_t t = splitMix64(s ^ splitMix64(b + 0xbf58476d1ce4e5b9ULL));
        return Rng(t, splitMix64(t));
    }

    /** SplitMix64 finalizer: a strong 64-bit mixing function. */
    static uint64_t
    splitMix64(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

  private:
    uint64_t state = 0;
    uint64_t inc = 0;
    bool haveSpare = false;
    float spare = 0.0f;
};

} // namespace instant3d

#endif // INSTANT3D_COMMON_RNG_HH
