/**
 * @file
 * Per-thread scratch arena for the training/rendering hot path.
 *
 * The batched NeRF kernels (Mlp::forwardBatch, HashEncoding::encodeBatch,
 * NerfField::queryBatch, the renderer's per-ray records) allocate all of
 * their temporary and record storage from a Workspace instead of heap-
 * allocating per call. A Workspace is a bump allocator over a list of
 * blocks: allocations are O(1) pointer arithmetic, reset() recycles the
 * full capacity without freeing, and after the first few rays the arena
 * reaches its high-water mark and never touches the allocator again.
 *
 * Pointers returned by alloc() stay valid until the next reset() (blocks
 * are never reallocated while in use). One Workspace serves one thread;
 * the Trainer keeps one per worker.
 */

#ifndef INSTANT3D_COMMON_WORKSPACE_HH
#define INSTANT3D_COMMON_WORKSPACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace instant3d {

/**
 * Growable bump allocator with block-stable addresses.
 */
class Workspace
{
  public:
    /**
     * Allocate n default-initialized elements of T, 64-byte aligned.
     * T must be trivially copyable (raw scratch data only). The memory
     * stays valid until the next reset().
     */
    template <typename T>
    T *
    alloc(size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "Workspace only holds trivial scratch data");
        if (n == 0)
            n = 1; // keep a valid, distinct pointer for empty requests
        void *raw = allocBytes(n * sizeof(T));
        T *ptr = static_cast<T *>(raw);
        for (size_t i = 0; i < n; i++)
            ::new (static_cast<void *>(ptr + i)) T;
        return ptr;
    }

    /** Recycle all allocations; capacity is kept for reuse. */
    void
    reset()
    {
        for (auto &b : blocks)
            b.used = 0;
        cur = 0;
    }

    /** Total bytes currently reserved across all blocks. */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const auto &b : blocks)
            total += b.size;
        return total;
    }

  private:
    static constexpr size_t alignment = 64;
    static constexpr size_t minBlockBytes = 1 << 16; // 64 KiB

    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    void *
    allocBytes(size_t bytes)
    {
        bytes = (bytes + alignment - 1) & ~(alignment - 1);
        while (cur < blocks.size() &&
               blocks[cur].used + bytes > blocks[cur].size) {
            cur++;
        }
        if (cur == blocks.size()) {
            Block b;
            size_t want = blocks.empty() ? minBlockBytes
                                         : blocks.back().size * 2;
            b.size = want > bytes ? want : bytes;
            // Over-allocate so we can hand out aligned pointers.
            b.data = std::make_unique<unsigned char[]>(b.size + alignment);
            blocks.push_back(std::move(b));
        }
        Block &b = blocks[cur];
        auto base = reinterpret_cast<uintptr_t>(b.data.get());
        uintptr_t p = (base + b.used + alignment - 1) & ~(alignment - 1);
        b.used = (p - base) + bytes;
        return reinterpret_cast<void *>(p);
    }

    std::vector<Block> blocks;
    size_t cur = 0;
};

} // namespace instant3d

#endif // INSTANT3D_COMMON_WORKSPACE_HH
