/**
 * @file
 * Software IEEE-754 binary16 ("half") arithmetic.
 *
 * The Instant-3D accelerator uses a 16-bit half-precision floating-point
 * datapath for all algorithm-related computation (Sec 5.1). To model the
 * numerical behaviour of that datapath faithfully on hardware without
 * native fp16, every value is stored as the 16-bit pattern and each
 * arithmetic operation rounds through binary16 (round-to-nearest-even via
 * the float32 conversion).
 */

#ifndef INSTANT3D_COMMON_HALF_HH
#define INSTANT3D_COMMON_HALF_HH

#include <cstdint>
#include <cstring>

namespace instant3d {

/** Convert a float32 to the nearest binary16 bit pattern. */
uint16_t floatToHalfBits(float f);

/** Convert a binary16 bit pattern to float32 (exact). */
float halfBitsToFloat(uint16_t h);

/**
 * A binary16 value. All operators convert to float32, compute, and round
 * the result back through binary16, which matches an fp16 FPU with a
 * single rounding per operation.
 */
class Half
{
  public:
    Half() : bits(0) {}
    Half(float f) : bits(floatToHalfBits(f)) {}

    /** Reinterpret raw storage bits as a Half. */
    static Half
    fromBits(uint16_t b)
    {
        Half h;
        h.bits = b;
        return h;
    }

    uint16_t toBits() const { return bits; }
    float toFloat() const { return halfBitsToFloat(bits); }
    operator float() const { return toFloat(); }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }

    Half &
    operator+=(Half o)
    {
        *this = *this + o;
        return *this;
    }

    bool operator==(Half o) const
    { return toFloat() == o.toFloat(); }

  private:
    uint16_t bits;
};

inline uint16_t
floatToHalfBits(float f)
{
    uint32_t x;
    std::memcpy(&x, &f, sizeof(x));

    uint32_t sign = (x >> 16) & 0x8000u;
    uint32_t mant = x & 0x007fffffu;
    int32_t exp = static_cast<int32_t>((x >> 23) & 0xffu) - 127 + 15;

    if (exp >= 31) {
        // Overflow to infinity; preserve NaN payload bit.
        if (((x >> 23) & 0xffu) == 0xffu && mant)
            return static_cast<uint16_t>(sign | 0x7e00u);
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (exp <= 0) {
        // Subnormal or zero after the shift.
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        mant |= 0x00800000u;
        uint32_t shift = static_cast<uint32_t>(14 - exp);
        uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        uint32_t rem = mant & ((1u << shift) - 1u);
        uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1u)))
            half_mant++;
        return static_cast<uint16_t>(sign | half_mant);
    }

    uint16_t h = static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13));
    // Round to nearest even on the dropped 13 bits.
    uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u)))
        h++;
    return h;
}

inline float
halfBitsToFloat(uint16_t h)
{
    uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x3ffu;
    uint32_t x;

    if (exp == 0) {
        if (mant == 0) {
            x = sign;
        } else {
            // Normalize the subnormal.
            int e = -1;
            do {
                e++;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            mant &= 0x3ffu;
            x = sign | ((127 - 15 - e) << 23) | (mant << 13);
        }
    } else if (exp == 31) {
        x = sign | 0x7f800000u | (mant << 13);
    } else {
        x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }

    float f;
    std::memcpy(&f, &x, sizeof(f));
    return f;
}

} // namespace instant3d

#endif // INSTANT3D_COMMON_HALF_HH
