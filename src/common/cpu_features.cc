#include "common/cpu_features.hh"

namespace instant3d {

CpuFeatures
detectCpuFeatures()
{
    static const CpuFeatures cached = [] {
        CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
        __builtin_cpu_init();
        f.sse2 = __builtin_cpu_supports("sse2");
        f.avx = __builtin_cpu_supports("avx");
        f.avx2 = __builtin_cpu_supports("avx2");
        f.fma = __builtin_cpu_supports("fma");
        f.avx512f = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__) || defined(__ARM_NEON)
        f.neon = true; // Architecturally guaranteed on aarch64.
#endif
        return f;
    }();
    return cached;
}

std::string
cpuFeatureString()
{
    const CpuFeatures f = detectCpuFeatures();
    std::string s;
    auto add = [&s](bool have, const char *name) {
        if (!have)
            return;
        if (!s.empty())
            s += ' ';
        s += name;
    };
    add(f.sse2, "sse2");
    add(f.avx, "avx");
    add(f.avx2, "avx2");
    add(f.fma, "fma");
    add(f.avx512f, "avx512f");
    add(f.neon, "neon");
    return s.empty() ? "none" : s;
}

std::string
compiledSimdString()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__) && defined(__FMA__)
    return "avx2+fma";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__AVX__)
    return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#elif defined(__ARM_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

} // namespace instant3d
