/**
 * @file
 * CPU SIMD feature detection for the kernel-backend layer.
 *
 * Two views are reported and both land in BENCH_train_throughput.json:
 * what the *machine* supports at runtime (detectCpuFeatures) and what
 * the *build* was compiled to use (compiledSimdString) -- the simd
 * backend's portable loops only ever emit the compiled ISA, so the
 * pair shows at a glance whether a bench host left vector width on
 * the table (e.g. an AVX2 machine running a baseline SSE2 build).
 */

#ifndef INSTANT3D_COMMON_CPU_FEATURES_HH
#define INSTANT3D_COMMON_CPU_FEATURES_HH

#include <string>

namespace instant3d {

/** Runtime-detected SIMD capabilities of the executing CPU. */
struct CpuFeatures
{
    bool sse2 = false;
    bool avx = false;
    bool avx2 = false;
    bool fma = false;
    bool avx512f = false;
    bool neon = false;
};

/** Query the executing CPU (cached; cheap to call repeatedly). */
CpuFeatures detectCpuFeatures();

/** Space-separated runtime feature list, e.g. "sse2 avx avx2 fma";
 *  "none" when nothing is detected. */
std::string cpuFeatureString();

/** The SIMD ISA this binary was compiled against, from predefined
 *  macros, e.g. "avx2+fma" or "sse2"; "scalar" for plain builds. */
std::string compiledSimdString();

} // namespace instant3d

#endif // INSTANT3D_COMMON_CPU_FEATURES_HH
