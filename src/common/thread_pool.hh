/**
 * @file
 * Fixed-size worker pool with a blocking parallelFor.
 *
 * The training and rendering hot paths are embarrassingly parallel over
 * rays and image rows; this pool turns that into wall-clock speedup
 * while keeping the work *assignment* irrelevant to the results: tasks
 * are claimed dynamically from an atomic counter, and every consumer of
 * the pool keeps its mutable state per-task (gradient shards, output
 * rows) or per-rank (scratch workspaces that carry no state across
 * tasks), so results are bit-identical for any thread count.
 *
 * Thread count resolution: an explicit count wins; 0 means "auto",
 * which reads the INSTANT3D_THREADS environment variable and falls back
 * to std::thread::hardware_concurrency().
 */

#ifndef INSTANT3D_COMMON_THREAD_POOL_HH
#define INSTANT3D_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace instant3d {

/**
 * A pool of persistent workers executing indexed task batches.
 */
class ThreadPool
{
  public:
    /** @param threads  Worker count; 0 = auto (env var / hardware). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return nthreads; }

    /**
     * Run fn(task, rank) for every task in [0, num_tasks); blocks until
     * all tasks finish. `rank` is in [0, threadCount()) and identifies
     * the executing thread (for per-thread scratch). Tasks are claimed
     * dynamically; callers must not depend on the task->rank mapping.
     *
     * Multi-client safe: concurrent calls from distinct client threads
     * serialize (one batch runs at a time; later callers block until
     * the pool frees up), so a pool can be shared between e.g. a render
     * service's scheduler and a trainer. Still not reentrant: calling
     * parallelFor from inside a task (a pool worker thread) panics,
     * since that would deadlock on the batch it is part of.
     */
    void parallelFor(int num_tasks,
                     const std::function<void(int, int)> &fn);

    /** Resolve an "auto" thread count (INSTANT3D_THREADS or hardware). */
    static int defaultThreadCount();

  private:
    void workerLoop(int rank);
    void runTasks(const std::function<void(int, int)> &fn, int total,
                  int rank);
    bool onWorkerThread() const;

    int nthreads = 1;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t generation = 0;       //!< Bumped per parallelFor call.
    int activeWorkers = 0;         //!< Workers inside the current batch.
    bool shutdown = false;

    const std::function<void(int, int)> *job = nullptr;
    std::thread::id jobOwner; //!< Rank-0 client of the current batch.
    int jobTasks = 0;
    std::atomic<int> nextTask{0};
    std::atomic<int> tasksDone{0};
};

} // namespace instant3d

#endif // INSTANT3D_COMMON_THREAD_POOL_HH
