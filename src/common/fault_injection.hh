/**
 * @file
 * Deterministic fault injection for the serving and checkpoint paths.
 *
 * A small catalog of *named fault points* sits on the failure-prone
 * seams (checkpoint I/O, the render-service scheduler); each point is
 * a call to fault::shouldFire() at the site where the real failure
 * would surface. Tests and benches arm a point -- programmatically or
 * via the INSTANT3D_FAULTS environment variable -- with a firing rule
 * (always / the N-th hit / every N-th hit / seed-keyed probability),
 * and the site then fails exactly as the real fault would: a short
 * write, a failed fsync, a stalled scheduler. Firing is a pure
 * function of (spec, per-point hit index), so a failing run replays
 * bit-for-bit.
 *
 * Cost when disarmed: one relaxed atomic load per site. Compile with
 * -DINSTANT3D_DISABLE_FAULT_INJECTION to turn every site into a
 * constant-false no-op the optimizer deletes outright.
 */

#ifndef INSTANT3D_COMMON_FAULT_INJECTION_HH
#define INSTANT3D_COMMON_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace instant3d {
namespace fault {

/** The fault-point catalog (see README "Failure semantics"). */
enum class Point : uint8_t
{
    /** saveCheckpoint: an fwrite tears (prefix lands, call fails). */
    CheckpointShortWrite = 0,
    /** loadCheckpoint: an fread fails outright (transient EIO). */
    CheckpointShortRead,
    /** saveCheckpoint: the pre-publish fsync fails. */
    CheckpointFsyncFail,
    /** saveCheckpoint: the stored CRC word is corrupted (bit rot). */
    CheckpointCrcFlip,
    /** RenderService scheduler sleeps delayMs before each dispatch. */
    SchedulerStall,
    /** Each render chunk sleeps delayMs before rendering. */
    ChunkRenderDelay,
    /** ShardRouter dispatch: the chosen shard fails the request. */
    ShardFail,
    /**
     * ShardRouter dispatch: the chosen shard's response is delayed
     * delayMs (the request renders, but the router does not see the
     * result before then -- a slow replica, not a dead one).
     */
    ShardStall,
    /** ShardRouter dispatch: the chosen shard crashes (stops dead). */
    ShardCrash,
    /** Streaming loadCheckpoint: a payload chunk read fails (EIO). */
    CheckpointStreamShortRead,
    /** Streaming loadCheckpoint: each payload chunk read sleeps
     *  delayMs first (a slow disk, not a dead one). */
    CheckpointStreamStall,
    Count
};

constexpr int numPoints = static_cast<int>(Point::Count);

/** Stable name of a point ("checkpoint.short_write", ...). */
const char *pointName(Point point);

/** Reverse lookup; false when no point carries `name`. */
bool pointFromName(const std::string &name, Point &point);

/** When an armed point fires. */
enum class Mode : uint8_t
{
    Off,         //!< Disarmed.
    Never,       //!< Armed for counting only: hits recorded, no fires.
    Always,      //!< Every hit fires.
    OneShot,     //!< Fires exactly once, at 1-based hit index `n`.
    EveryN,      //!< Fires on hits n, 2n, 3n, ...
    Probability, //!< Hit h fires iff the (seed, point, h) draw < prob.
};

/** Firing rule for one point. */
struct Spec
{
    Mode mode = Mode::Off;
    uint64_t n = 0;           //!< OneShot hit index / EveryN period.
    double probability = 0.0; //!< Probability mode only.
    uint64_t seed = 0;        //!< Keys the Probability draws.
    int delayMs = 0;          //!< Sleep for delay points (maybeDelay).
};

void arm(Point point, const Spec &spec);
void disarm(Point point);
void disarmAll();

/**
 * Hits (slow-path evaluations) and fires of a point. Hit counters
 * only advance while at least one point is armed -- the disarmed fast
 * path counts nothing.
 */
uint64_t hitCount(Point point);
uint64_t fireCount(Point point);
void resetCounts();

/** Armed delayMs of a point (0 when disarmed or no delay set). */
int armedDelayMs(Point point);

/**
 * Parse and arm a comma-separated config string (the INSTANT3D_FAULTS
 * format, applied automatically at startup):
 *
 *   point=rule[,point=rule...]
 *
 * where rule is one of  always | never | hit:N | every:N |
 * prob:P[:seed:S]  optionally suffixed with  :delay:MS .
 * Example: "checkpoint.short_write=hit:3,scheduler.stall=always:delay:20"
 * Unparseable entries are warned about and skipped; returns true when
 * every entry parsed.
 */
bool armFromString(const std::string &config);

namespace detail {
extern std::atomic<uint32_t> armedMask;
bool fireSlow(Point point);
} // namespace detail

/**
 * The per-site check: does this hit of `point` fail? One relaxed
 * atomic load when nothing is armed anywhere.
 */
inline bool
shouldFire(Point point)
{
#ifdef INSTANT3D_DISABLE_FAULT_INJECTION
    (void)point;
    return false;
#else
    if (detail::armedMask.load(std::memory_order_relaxed) == 0)
        return false;
    return detail::fireSlow(point);
#endif
}

/**
 * shouldFire(), then sleep the point's armed delayMs when it fired.
 * The convenience form for stall/delay points.
 */
bool maybeDelay(Point point);

} // namespace fault
} // namespace instant3d

#endif // INSTANT3D_COMMON_FAULT_INJECTION_HH
