/**
 * @file
 * Aligned-console-table and CSV emission for the bench harness.
 *
 * Every bench binary reproduces one paper table or figure; TablePrinter
 * gives them a uniform "rows and series" output format so EXPERIMENTS.md
 * can quote the results verbatim.
 */

#ifndef INSTANT3D_COMMON_TABLE_HH
#define INSTANT3D_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace instant3d {

/**
 * A simple column-aligned text table. Cells are strings; numeric helpers
 * format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> column_names);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    Table &cell(const std::string &value);
    Table &cell(const char *value);
    Table &cell(double value, int precision = 2);
    Table &cell(long long value);
    Table &cell(int value) { return cell(static_cast<long long>(value)); }

    /** Render with padded columns and a header underline. */
    std::string toString() const;

    /** Render as RFC-4180-ish CSV (no quoting of commas needed here). */
    std::string toCsv() const;

    /** Convenience: print toString() to stdout. */
    void print() const;

    size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision (helper shared by benches). */
std::string formatDouble(double value, int precision);

/**
 * Print a labelled single-figure banner so the bench output reads like
 * the paper: "==== Figure 16: ... ====".
 */
void printBanner(const std::string &title);

} // namespace instant3d

#endif // INSTANT3D_COMMON_TABLE_HH
