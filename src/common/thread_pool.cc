#include "common/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace instant3d {

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("INSTANT3D_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
        warn("ignoring invalid INSTANT3D_THREADS value");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    nthreads = threads > 0 ? threads : defaultThreadCount();
    // Rank 0 is the calling thread; spawn the helpers only.
    for (int r = 1; r < nthreads; r++)
        workers.emplace_back([this, r] { workerLoop(r); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        shutdown = true;
    }
    cvStart.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop(int rank)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(int, int)> *fn = nullptr;
        int total = 0;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvStart.wait(lock, [&] {
                return shutdown || generation != seen;
            });
            if (shutdown)
                return;
            seen = generation;
            // A late wakeup can observe a batch that already finished
            // (job cleared); go back to waiting in that case.
            fn = job;
            total = jobTasks;
            // Register as a participant while still under the lock:
            // parallelFor() cannot return (and destroy the closure or
            // reset the task counters) until activeWorkers drains, so a
            // worker can never claim tasks of a later batch through a
            // stale closure.
            if (fn != nullptr)
                activeWorkers++;
        }
        if (fn != nullptr) {
            runTasks(*fn, total, rank);
            std::lock_guard<std::mutex> lock(mtx);
            if (--activeWorkers == 0)
                cvDone.notify_all();
        }
    }
}

void
ThreadPool::runTasks(const std::function<void(int, int)> &fn, int total,
                     int rank)
{
    int done = 0;
    for (;;) {
        int t = nextTask.fetch_add(1, std::memory_order_relaxed);
        if (t >= total)
            break;
        fn(t, rank);
        done++;
    }
    if (done > 0 &&
        tasksDone.fetch_add(done, std::memory_order_acq_rel) + done ==
            total) {
        std::lock_guard<std::mutex> lock(mtx);
        cvDone.notify_all();
    }
}

void
ThreadPool::parallelFor(int num_tasks,
                        const std::function<void(int, int)> &fn)
{
    if (num_tasks <= 0)
        return;
    if (nthreads == 1 || num_tasks == 1) {
        for (int t = 0; t < num_tasks; t++)
            fn(t, 0);
        return;
    }

    {
        std::unique_lock<std::mutex> lock(mtx);
        // From inside the in-flight batch -- a helper worker, or the
        // batch's own rank-0 client thread -- waiting would deadlock
        // on ourselves: that is true reentrancy. From any other thread
        // a busy pool just means another client got here first: wait
        // for its batch to retire, then claim the pool.
        panicIf(job != nullptr &&
                    (onWorkerThread() ||
                     std::this_thread::get_id() == jobOwner),
                "ThreadPool::parallelFor is not reentrant");
        cvDone.wait(lock, [&] { return job == nullptr; });
        job = &fn;
        jobOwner = std::this_thread::get_id();
        jobTasks = num_tasks;
        nextTask.store(0, std::memory_order_relaxed);
        tasksDone.store(0, std::memory_order_relaxed);
        generation++;
    }
    cvStart.notify_all();

    // The caller participates as rank 0.
    runTasks(fn, num_tasks, 0);

    // Wait until every task ran AND every worker that entered this
    // batch has left it; only then is it safe to invalidate the job
    // and let the caller destroy the closure.
    std::unique_lock<std::mutex> lock(mtx);
    cvDone.wait(lock, [&] {
        return tasksDone.load(std::memory_order_acquire) == jobTasks &&
               activeWorkers == 0;
    });
    job = nullptr;
    // Wake any client thread waiting to claim the pool for its batch.
    cvDone.notify_all();
}

bool
ThreadPool::onWorkerThread() const
{
    auto self = std::this_thread::get_id();
    for (const auto &w : workers)
        if (w.get_id() == self)
            return true;
    return false;
}

} // namespace instant3d
