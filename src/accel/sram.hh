/**
 * @file
 * Multi-bank SRAM array model (the "Hash Table SRAM Banks" of Fig 11).
 *
 * The 1D hash table is interleaved across `numBanks` single-ported
 * banks; each bank can serve one access per cycle. A set of addresses
 * can be served in the same cycle iff no two map to the same bank
 * (Sec 4.4). The model tracks access counts for the energy model.
 */

#ifndef INSTANT3D_ACCEL_SRAM_HH
#define INSTANT3D_ACCEL_SRAM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace instant3d {

/**
 * A banked SRAM array. Addresses are entry indices into the hash
 * table, which is "divided into banks equally" (Sec 4.4): bank b holds
 * the b-th contiguous block of entries. This block partitioning is why
 * the paper's clustered vertex groups occupy only 2-4 banks -- the two
 * x-neighbour addresses of a group (distance ~1) land in the same
 * bank, and only the 4 group bases spread.
 */
class SramArray
{
  public:
    /**
     * @param num_banks       Power-of-two bank count (8/16/32).
     * @param bytes_per_entry Entry payload (2 fp16 features = 4 B).
     * @param capacity_bytes  Total array capacity.
     * @param table_entries   Entries of the resident hash table
     *                        (0: derive from capacity).
     */
    SramArray(int num_banks, int bytes_per_entry, uint64_t capacity_bytes,
              uint64_t table_entries = 0);

    int numBanks() const { return banks; }
    uint64_t capacityBytes() const { return capacity; }
    int bytesPerEntry() const { return entryBytes; }
    uint64_t entriesPerBank() const { return bankEntries; }

    /** Bank index holding the given entry address. */
    int
    bankOf(uint32_t address) const
    {
        uint64_t b = address / bankEntries;
        if (b >= static_cast<uint64_t>(banks))
            b = banks - 1;
        return static_cast<int>(b);
    }

    /** True iff all addresses hit distinct banks (one-cycle service). */
    bool conflictFree(std::span<const uint32_t> addresses) const;

    /** Record a read of each address (energy accounting). */
    void serveReads(std::span<const uint32_t> addresses);

    /** Record a write of each address. */
    void serveWrites(std::span<const uint32_t> addresses);

    uint64_t readCount() const { return reads; }
    uint64_t writeCount() const { return writes; }

    /** Whether a hash table of the given size fits this array. */
    bool fits(uint64_t table_bytes) const
    { return table_bytes <= capacity; }

  private:
    int banks;
    int entryBytes;
    uint64_t capacity;
    uint64_t bankEntries;
    uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_SRAM_HH
