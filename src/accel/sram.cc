#include "accel/sram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace instant3d {

SramArray::SramArray(int num_banks, int bytes_per_entry,
                     uint64_t capacity_bytes, uint64_t table_entries)
    : banks(num_banks), entryBytes(bytes_per_entry),
      capacity(capacity_bytes)
{
    fatalIf(num_banks < 1 || (num_banks & (num_banks - 1)) != 0,
            "SRAM bank count must be a power of two");
    fatalIf(bytes_per_entry < 1, "entry payload must be positive");
    if (table_entries == 0)
        table_entries = capacity_bytes / bytes_per_entry;
    bankEntries = std::max<uint64_t>(
        1, (table_entries + banks - 1) / banks);
}

bool
SramArray::conflictFree(std::span<const uint32_t> addresses) const
{
    uint64_t used = 0;
    for (uint32_t a : addresses) {
        uint64_t bit = 1ull << bankOf(a);
        if (used & bit)
            return false;
        used |= bit;
    }
    return true;
}

void
SramArray::serveReads(std::span<const uint32_t> addresses)
{
    reads += addresses.size();
}

void
SramArray::serveWrites(std::span<const uint32_t> addresses)
{
    writes += addresses.size();
}

} // namespace instant3d
