/**
 * @file
 * Trace-derived calibration of the grid-core datapath.
 *
 * The cycle cost of the embedding-grid steps depends on how well the
 * FRM fills the SRAM banks and how much update traffic the BUM merges,
 * both of which are properties of the *address stream*, not closed-form
 * constants. TraceCalibration measures them by replaying a captured
 * training trace (src/trace) through the actual FrmUnit / BumUnit
 * models at every bank width, and the Accelerator scales those
 * per-access costs up to the paper-scale workload.
 */

#ifndef INSTANT3D_ACCEL_CALIBRATION_HH
#define INSTANT3D_ACCEL_CALIBRATION_HH

#include <vector>

#include "trace/mem_trace.hh"

namespace instant3d {

/** Measured issue efficiencies and merge behaviour of a trace. */
struct TraceCalibration
{
    /** FRM read utilization (requests/bank/cycle) at 8/16/32 banks. */
    double frmUtil8 = 0.0;
    double frmUtil16 = 0.0;
    double frmUtil32 = 0.0;

    /** In-order (no FRM) utilization at 8/16/32 banks. */
    double inOrderUtil8 = 0.0;
    double inOrderUtil16 = 0.0;
    double inOrderUtil32 = 0.0;

    /** Fraction of BP updates absorbed by the BUM (Sec 4.5). */
    double bumMergeRatio = 0.0;

    /** Utilization lookup for a given bank count and issue policy. */
    double utilization(int banks, bool frm_enabled) const;

    /**
     * Representative constants measured from lego-scene training
     * traces with the shipped configuration; used by unit tests and
     * quick examples that do not want to capture a trace first.
     */
    static TraceCalibration defaults();
};

/**
 * Measure a calibration by replaying a captured trace.
 *
 * @param reads            FF read accesses in hardware (batch-major)
 *                         order -- see batchMajorOrder().
 * @param writes           BP update accesses in arrival order.
 * @param frm_window_depth Reorder window depth (paper: 16).
 * @param bum_entries      BUM buffer capacity (paper: 16).
 * @param bum_timeout      BUM idle-flush threshold in cycles.
 */
TraceCalibration calibrateFromTrace(const std::vector<GridAccess> &reads,
                                    const std::vector<GridAccess> &writes,
                                    int frm_window_depth = 16,
                                    int bum_entries = 16,
                                    int bum_timeout = 64);

} // namespace instant3d

#endif // INSTANT3D_ACCEL_CALIBRATION_HH
