/**
 * @file
 * Multi-core-fusion reconfigurable scheme (Sec 4.6 / Fig 14).
 *
 * Each of the four grid cores owns 8 SRAM banks (256 KB). Hash tables
 * are mapped by size:
 *   - <= 256 KB: Level 0 standalone -- four cores run independent
 *     levels, each behind its own 8-bank FRM.
 *   - <= 512 KB: Level 1 fusion -- cores fuse in pairs; a 16-bank FRM
 *     schedules the pair's banks.
 *   - <= 1 MB:  Level 2 fusion -- all four cores fuse behind the
 *     32-bank FRM.
 * Tables larger than 1 MB cannot be SRAM-resident and fall back to
 * DRAM (this is what the reconfigurable scheme exists to avoid).
 */

#ifndef INSTANT3D_ACCEL_FUSION_HH
#define INSTANT3D_ACCEL_FUSION_HH

#include <cstdint>
#include <string>

namespace instant3d {

/** Operating mode of the grid-core cluster for one hash table. */
enum class FusionLevel
{
    Level0,     //!< 4 standalone cores, 8 banks each.
    Level1,     //!< 2 fused pairs, 16 banks each.
    Level2,     //!< 1 fused cluster, 32 banks.
    DramSpill,  //!< Table exceeds total SRAM; served from DRAM.
};

/** Geometry of a fusion mode. */
struct FusionMode
{
    FusionLevel level = FusionLevel::Level0;
    int banksPerCluster = 8;  //!< FRM width of one cluster.
    int numClusters = 4;      //!< Independent clusters working in
                              //!< parallel (on different grid levels).

    /** Aggregate banks across clusters. */
    int totalBanks() const { return banksPerCluster * numClusters; }

    std::string name() const;
};

/**
 * Select the fusion mode for a hash table of `table_bytes`, given the
 * per-core SRAM capacity (256 KB) and core count (4).
 *
 * @param fusion_enabled  When false (ablation), only Level 0 is
 *                        available and larger tables spill to DRAM.
 */
FusionMode fusionForTable(uint64_t table_bytes,
                          uint64_t bytes_per_core = 256 * 1024,
                          int num_cores = 4, int banks_per_core = 8,
                          bool fusion_enabled = true);

} // namespace instant3d

#endif // INSTANT3D_ACCEL_FUSION_HH
