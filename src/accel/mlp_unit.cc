#include "accel/mlp_unit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace instant3d {

MlpUnitModel::MlpUnitModel(const MlpUnitConfig &config)
    : cfg(config)
{
    fatalIf(cfg.systolicRows < 1 || cfg.systolicCols < 1,
            "systolic array dims must be positive");
    fatalIf(cfg.adderTreeLanes < 1, "adder tree needs lanes");
}

MlpLayerCost
MlpUnitModel::layerCost(uint64_t batch, int in_dim, int out_dim) const
{
    fatalIf(in_dim < 1 || out_dim < 1, "layer dims must be positive");
    MlpLayerCost cost;
    cost.macs = batch * static_cast<uint64_t>(in_dim) * out_dim;

    if (out_dim <= cfg.smallChannelCutoff) {
        // Multiplier-adder tree: reduces `adderTreeLanes` products per
        // cycle; one output scalar needs ceil(in/lanes) cycles.
        cost.unit = MlpUnitKind::MulAddTree;
        uint64_t cycles_per_out =
            (static_cast<uint64_t>(in_dim) + cfg.adderTreeLanes - 1) /
            cfg.adderTreeLanes;
        uint64_t scalar_outputs = batch * static_cast<uint64_t>(out_dim);
        cost.cycles = (scalar_outputs * cycles_per_out +
                       cfg.numAdderTrees - 1) / cfg.numAdderTrees;
    } else {
        // Systolic array: tile the weight matrix over the PE grid; each
        // tile streams the batch through at one row per cycle.
        cost.unit = MlpUnitKind::SystolicArray;
        uint64_t row_tiles =
            (static_cast<uint64_t>(in_dim) + cfg.systolicRows - 1) /
            cfg.systolicRows;
        uint64_t col_tiles =
            (static_cast<uint64_t>(out_dim) + cfg.systolicCols - 1) /
            cfg.systolicCols;
        double ideal = static_cast<double>(row_tiles) * col_tiles *
                       static_cast<double>(batch);
        cost.cycles = static_cast<uint64_t>(
            ideal / cfg.systolicEfficiency) + cfg.systolicRows;
    }
    return cost;
}

uint64_t
MlpUnitModel::forwardCycles(uint64_t batch,
                            const std::vector<int> &dims) const
{
    fatalIf(dims.size() < 2, "MLP needs at least two dims");
    uint64_t total = 0;
    for (size_t l = 0; l + 1 < dims.size(); l++)
        total += layerCost(batch, dims[l], dims[l + 1]).cycles;
    return total;
}

uint64_t
MlpUnitModel::backwardCycles(uint64_t batch,
                             const std::vector<int> &dims) const
{
    // dL/dW (batch outer products) + dL/dx (transposed matvec): two
    // matrix passes of the forward shape.
    return 2 * forwardCycles(batch, dims);
}

double
MlpUnitModel::peakMacsPerCycle() const
{
    return static_cast<double>(cfg.systolicRows) * cfg.systolicCols +
           static_cast<double>(cfg.adderTreeLanes) * cfg.numAdderTrees;
}

} // namespace instant3d
