#include "accel/accelerator.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"

namespace instant3d {

Accelerator::Accelerator(const AcceleratorConfig &config,
                         const TraceCalibration &calibration)
    : cfg(config), calib(calibration)
{
    fatalIf(cfg.numGridCores < 1, "accelerator needs grid cores");
    fatalIf(cfg.frequencyGHz <= 0.0, "frequency must be positive");
}

std::vector<uint64_t>
Accelerator::levelTableBytes(const BranchWorkload &b) const
{
    // Instant-NGP growth schedule: N_l = N_min * g^l with the growth
    // factor spanning base..2048-ish over the level count; coarse
    // levels are dense ((N+1)^3 vertices) and only fine levels saturate
    // the hash-table budget.
    constexpr double base_res = 16.0;
    constexpr double growth = 1.45;
    std::vector<uint64_t> bytes(b.levels);
    for (int l = 0; l < b.levels; l++) {
        double res = base_res * std::pow(growth, l);
        double dense = std::pow(res + 1.0, 3.0);
        double entries = std::min(
            dense, static_cast<double>(b.tableEntries));
        bytes[l] = static_cast<uint64_t>(entries) *
                   b.featuresPerEntry * 2;
    }
    return bytes;
}

BranchCycleReport
Accelerator::simulateBranch(const BranchWorkload &b,
                            double points_per_iter) const
{
    BranchCycleReport rep;
    rep.branchName = b.name;

    auto table_bytes = levelTableBytes(b);
    const double reads_per_level = points_per_iter * 8.0;
    const double updates_per_level = reads_per_level * b.updateRate;
    const double bytes_per_entry = b.featuresPerEntry * 2.0;

    // DRAM random-access service rate (entries/cycle) for spills.
    const double dram_rand_entries_per_cycle =
        cfg.dramBandwidthGBs * 1e9 * cfg.dramRandomEff / bytes_per_entry /
        (cfg.frequencyGHz * 1e9);

    // Aggregate BUM intake (updates/cycle) across all cores.
    const double bum_intake =
        cfg.bumIntakePerCorePerCycle * cfg.numGridCores;

    // Accumulate per-fusion-mode cycle demands so clusters of the same
    // mode run different levels in parallel.
    std::map<int, std::pair<double, double>> mode_cycles; // clusters ->
                                                          // (ff, bp)
    double ff_spill = 0.0, bp_spill = 0.0;

    for (uint64_t tb : table_bytes) {
        FusionMode mode = fusionForTable(tb, cfg.sramBytesPerCore,
                                         cfg.numGridCores,
                                         cfg.banksPerCore,
                                         cfg.enableFusion);
        rep.levelModes.push_back(mode.level);
        rep.sramReads += static_cast<uint64_t>(reads_per_level);

        double merge = cfg.enableBum ? calib.bumMergeRatio : 0.0;
        double writebacks = updates_per_level * (1.0 - merge);
        // Each write-back is a read-modify-write: two bank operations.
        double write_ops = 2.0 * writebacks;
        rep.sramWriteOps += static_cast<uint64_t>(write_ops);

        if (mode.level == FusionLevel::DramSpill) {
            rep.dramSpillAccesses += static_cast<uint64_t>(
                reads_per_level + writebacks);
            ff_spill += reads_per_level / dram_rand_entries_per_cycle;
            bp_spill += std::max(
                updates_per_level / bum_intake,
                write_ops / dram_rand_entries_per_cycle);
            continue;
        }

        // SRAM-resident level: FRM-scheduled reads.
        double read_util =
            calib.utilization(mode.banksPerCluster, cfg.enableFrm);
        double ff = reads_per_level /
                    (read_util * mode.banksPerCluster);

        // BP: intake-bound or write-issue-bound. Buffered (BUM) write-
        // backs can be scheduled collision-free; raw gradient write-
        // backs issue in order.
        double write_util =
            calib.utilization(mode.banksPerCluster, cfg.enableBum);
        double bp = std::max(updates_per_level / bum_intake,
                             write_ops /
                                 (write_util * mode.banksPerCluster));

        auto &slot = mode_cycles[mode.numClusters];
        slot.first += ff;
        slot.second += bp;

        // Table streamed in before FF and dirty data written back.
        rep.dramStreamBytes += tb;
        if (b.updateRate > 0.0)
            rep.dramStreamBytes += static_cast<uint64_t>(
                tb * b.updateRate);
    }

    double ff_total = ff_spill, bp_total = bp_spill;
    for (const auto &[clusters, cyc] : mode_cycles) {
        ff_total += cyc.first / clusters;
        bp_total += cyc.second / clusters;
    }
    rep.ffCycles = static_cast<uint64_t>(ff_total);
    rep.bpCycles = static_cast<uint64_t>(bp_total);
    return rep;
}

AcceleratorResult
Accelerator::simulate(const TrainingWorkload &w) const
{
    AcceleratorResult res;
    const double freq = cfg.frequencyGHz * 1e9;
    MlpUnitModel mlp(cfg.mlp);

    // ---- Grid cores (Step 3-1 FF + BP) ----
    double grid_ff_cycles = 0.0, grid_bp_cycles = 0.0;
    double dram_bytes = 0.0;
    for (const auto &b : w.branches) {
        BranchCycleReport rep = simulateBranch(b, w.pointsPerIter);
        grid_ff_cycles += static_cast<double>(rep.ffCycles);
        grid_bp_cycles += static_cast<double>(rep.bpCycles);
        dram_bytes += static_cast<double>(rep.dramStreamBytes) +
                      static_cast<double>(rep.dramSpillAccesses) *
                          b.featuresPerEntry * 2.0;
        res.sramReadsPerIter += static_cast<double>(rep.sramReads);
        res.sramWriteOpsPerIter +=
            static_cast<double>(rep.sramWriteOps);
        res.branches.push_back(std::move(rep));
    }

    // ---- MLP units (Step 3-2 FF + BP) ----
    // Paper MLP shapes: density head 32->64->64->16, color head
    // 32->64->64->3 (Sec 2.1 "3 layers with 64 hidden units").
    const std::vector<int> density_dims = {32, 64, 64, 16};
    const std::vector<int> color_dims = {32, 64, 64, 3};
    auto batch = static_cast<uint64_t>(w.pointsPerIter);

    double color_bp_rate = 1.0;
    if (w.branches.size() >= 2)
        color_bp_rate = w.branches.back().updateRate;

    res.mlpFfCycles = mlp.forwardCycles(batch, density_dims) +
                      mlp.forwardCycles(batch, color_dims);
    res.mlpBpCycles = mlp.backwardCycles(batch, density_dims) +
                      static_cast<uint64_t>(
                          mlp.backwardCycles(batch, color_dims) *
                          color_bp_rate);
    // FF plus ~2x-forward BP: three forward-equivalents of MAC work.
    res.macsPerIter = 3.0 * w.mlpMacsPerPoint * w.pointsPerIter;

    // ---- Compose the iteration ----
    res.gridSeconds = (grid_ff_cycles + grid_bp_cycles) / freq;
    res.mlpSeconds =
        static_cast<double>(res.mlpFfCycles + res.mlpBpCycles) / freq;

    // Grid cores and MLP units pipeline across batch chunks; DRAM
    // table streaming overlaps roughly half.
    double dram_seconds =
        dram_bytes / (cfg.dramBandwidthGBs * 1e9 * cfg.dramStreamEff);
    res.dramBytesPerIter = dram_bytes;
    double compute = std::max(res.gridSeconds, res.mlpSeconds) *
                     (1.0 + cfg.pipelineOverhead);
    double iter_seconds = compute + 0.5 * dram_seconds +
                          cfg.hostSecondsPerIter;
    res.secondsPerIter = iter_seconds;
    res.totalSeconds = iter_seconds * w.iterations;

    // ---- Attribute to pipeline steps (scaled to the real total) ----
    StepBreakdown &bd = res.breakdown;
    bd[PipelineStep::SampleAndRays] = 0.45 * cfg.hostSecondsPerIter;
    bd[PipelineStep::RenderAndLoss] = 0.55 * cfg.hostSecondsPerIter;
    bd[PipelineStep::GridInterpFF] =
        grid_ff_cycles / freq + 0.5 * dram_seconds;
    bd[PipelineStep::GridInterpBP] = grid_bp_cycles / freq;
    bd[PipelineStep::MlpFF] = static_cast<double>(res.mlpFfCycles) / freq;
    bd[PipelineStep::MlpBP] = static_cast<double>(res.mlpBpCycles) / freq;
    double raw_total = bd.totalPerIter();
    if (raw_total > 0.0) {
        double scale = iter_seconds / raw_total;
        for (auto s : allPipelineSteps())
            bd[s] *= scale;
    }
    return res;
}

} // namespace instant3d
