/**
 * @file
 * Grid-core pipeline model (Fig 11, "Grid Core Design"): one level
 * pass flows through
 *
 *   3D Coordinate Buffer -> Interpolation Coord. Pre-Compute Unit ->
 *   Hash Function Compute Unit -> Interpolation Address Multi-Output
 *   Double Buffer -> FRM -> Hash Table SRAM Banks -> Interpolation
 *   Unit (or Gradient Compute Unit during BP).
 *
 * Every stage is pipelined; steady-state throughput is set by the
 * slowest stage. The hash unit emits all 8 vertex addresses of one
 * point per cycle and the interpolation unit retires one point per
 * cycle, so the SRAM issue stage (FRM or in-order) is the bottleneck
 * whenever its utilization drops below 8/banks -- which is exactly the
 * regime the FRM exists to fix.
 */

#ifndef INSTANT3D_ACCEL_GRID_CORE_HH
#define INSTANT3D_ACCEL_GRID_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "accel/bum.hh"
#include "accel/frm.hh"

namespace instant3d {

/** Static configuration of one grid core (or fused cluster). */
struct GridCoreConfig
{
    int banks = 8;
    uint64_t tableEntries = 1ull << 16;
    int frmWindowDepth = 16;
    bool enableFrm = true;

    /** Fill/drain latency of the whole pipeline, cycles. */
    int pipelineLatency = 12;

    /** Addresses the hash unit can produce per cycle (one point). */
    int hashAddressesPerCycle = 8;

    /** Points the interpolation unit retires per cycle. */
    int interpPointsPerCycle = 1;

    /** BUM geometry for the back-propagation pass. */
    BumConfig bum;
    bool enableBum = true;

    /** Gradient updates the BUM front-end absorbs per cycle. */
    int bumIntakePerCycle = 8;
};

/** Result of simulating one level pass through the core. */
struct GridCoreResult
{
    uint64_t cycles = 0;        //!< Total pass cycles incl. fill.
    uint64_t sramBoundCycles = 0; //!< Cycles demanded by SRAM issue.
    uint64_t hashBoundCycles = 0; //!< Cycles demanded by hashing.
    uint64_t interpBoundCycles = 0; //!< Cycles demanded by interp.
    FrmStats frm;               //!< SRAM issue statistics.

    /** Which stage set the pass length. */
    const char *bottleneck() const;
};

/**
 * Cycle model of one grid core processing a stream of interpolation
 * requests (8 vertex addresses per point) for one level pass.
 */
class GridCore
{
  public:
    explicit GridCore(const GridCoreConfig &config);

    const GridCoreConfig &config() const { return cfg; }

    /**
     * Feed-forward pass: each element holds one point's 8 vertex
     * addresses, in program order.
     */
    GridCoreResult processLevelPass(
        const std::vector<std::array<uint32_t, 8>> &points) const;

    /** Result of one back-propagation pass. */
    struct BackpropResult
    {
        uint64_t cycles = 0;
        uint64_t updates = 0;     //!< Logical gradient updates in.
        uint64_t writeBacks = 0;  //!< Physical RMW write-backs out.
        BumStats bum;
    };

    /**
     * Back-propagation pass: the per-point gradient updates stream
     * through the BUM (when enabled); surviving write-backs are
     * read-modify-writes issued against the banks.
     */
    BackpropResult processBackpropPass(
        const std::vector<std::array<uint32_t, 8>> &points) const;

  private:
    GridCoreConfig cfg;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_GRID_CORE_HH
