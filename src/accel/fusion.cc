#include "accel/fusion.hh"

#include "common/logging.hh"

namespace instant3d {

std::string
FusionMode::name() const
{
    switch (level) {
      case FusionLevel::Level0:
        return "Level 0 standalone (8 banks)";
      case FusionLevel::Level1:
        return "Level 1 fusion (16 banks)";
      case FusionLevel::Level2:
        return "Level 2 fusion (32 banks)";
      case FusionLevel::DramSpill:
        return "DRAM spill (no SRAM residency)";
    }
    panic("unreachable fusion level");
}

FusionMode
fusionForTable(uint64_t table_bytes, uint64_t bytes_per_core,
               int num_cores, int banks_per_core, bool fusion_enabled)
{
    fatalIf(num_cores < 1 || banks_per_core < 1,
            "fusion needs cores and banks");

    FusionMode mode;
    if (table_bytes <= bytes_per_core) {
        mode.level = FusionLevel::Level0;
        mode.banksPerCluster = banks_per_core;
        mode.numClusters = num_cores;
        return mode;
    }
    if (!fusion_enabled) {
        mode.level = FusionLevel::DramSpill;
        mode.banksPerCluster = banks_per_core;
        mode.numClusters = num_cores;
        return mode;
    }
    if (table_bytes <= 2 * bytes_per_core && num_cores >= 2) {
        mode.level = FusionLevel::Level1;
        mode.banksPerCluster = 2 * banks_per_core;
        mode.numClusters = num_cores / 2;
        return mode;
    }
    if (table_bytes <= static_cast<uint64_t>(num_cores) * bytes_per_core) {
        mode.level = FusionLevel::Level2;
        mode.banksPerCluster = num_cores * banks_per_core;
        mode.numClusters = 1;
        return mode;
    }
    mode.level = FusionLevel::DramSpill;
    mode.banksPerCluster = banks_per_core;
    mode.numClusters = num_cores;
    return mode;
}

} // namespace instant3d
