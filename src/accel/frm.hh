/**
 * @file
 * Feed-Forward Read Mapper (FRM, Sec 4.4 / Fig 12).
 *
 * SRAM read requests arrive in program order; without reordering, a
 * cycle can only issue the next run of requests until the first bank
 * collision (the paper's 25-50% utilization problem). The FRM keeps a
 * reorder window (pipeline depth 16, Sec 5.1) and each cycle maps any
 * collision-free subset of buffered requests onto the banks, raising
 * utilization toward one request per bank per cycle.
 */

#ifndef INSTANT3D_ACCEL_FRM_HH
#define INSTANT3D_ACCEL_FRM_HH

#include <cstdint>
#include <vector>

#include "accel/sram.hh"

namespace instant3d {

/** Result of streaming a read sequence through an issue policy. */
struct FrmStats
{
    uint64_t requests = 0; //!< Total read requests served.
    uint64_t cycles = 0;   //!< Cycles needed to serve them all.

    /** Requests per bank per cycle (1.0 = perfect). */
    double
    utilization(int num_banks) const
    {
        if (cycles == 0 || num_banks == 0)
            return 0.0;
        return static_cast<double>(requests) /
               (static_cast<double>(cycles) * num_banks);
    }

    /** Mean requests mapped into each multi-bank transaction. */
    double
    requestsPerCycle() const
    {
        return cycles ? static_cast<double>(requests) / cycles : 0.0;
    }
};

/**
 * The FRM unit: bank-collision-aware request scheduler.
 */
class FrmUnit
{
  public:
    /**
     * @param sram          Bank configuration to schedule against.
     * @param window_depth  Reorder window depth (paper: 16).
     */
    FrmUnit(SramArray &sram, int window_depth);

    int windowDepth() const { return depth; }

    /**
     * Stream a read-address sequence through the reorder window and
     * return the cycle count (the FRM issue policy).
     */
    FrmStats process(const std::vector<uint32_t> &addresses);

    /**
     * Baseline without the FRM: strictly in-order issue that stops at
     * the first bank collision each cycle.
     */
    static FrmStats processInOrder(SramArray &sram,
                                   const std::vector<uint32_t> &addresses);

  private:
    SramArray &array;
    int depth;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_FRM_HH
