#include "accel/frm.hh"

#include <deque>

#include "common/logging.hh"

namespace instant3d {

FrmUnit::FrmUnit(SramArray &sram, int window_depth)
    : array(sram), depth(window_depth)
{
    fatalIf(window_depth < 1, "FRM window depth must be positive");
}

FrmStats
FrmUnit::process(const std::vector<uint32_t> &addresses)
{
    FrmStats stats;
    stats.requests = addresses.size();

    std::deque<uint32_t> window;
    size_t next = 0;
    std::vector<uint32_t> issue;
    issue.reserve(array.numBanks());

    while (next < addresses.size() || !window.empty()) {
        // Refill the reorder window.
        while (window.size() < static_cast<size_t>(depth) &&
               next < addresses.size())
            window.push_back(addresses[next++]);

        // Greedily map one request per free bank, oldest first (the
        // Bank Collision Detector + Read Commit Unit of Fig 12b).
        uint64_t busy = 0;
        issue.clear();
        for (auto it = window.begin(); it != window.end();) {
            uint64_t bit = 1ull << array.bankOf(*it);
            if (!(busy & bit) &&
                issue.size() < static_cast<size_t>(array.numBanks())) {
                busy |= bit;
                issue.push_back(*it);
                it = window.erase(it);
            } else {
                ++it;
            }
        }
        array.serveReads(issue);
        stats.cycles++;
    }
    return stats;
}

FrmStats
FrmUnit::processInOrder(SramArray &sram,
                        const std::vector<uint32_t> &addresses)
{
    FrmStats stats;
    stats.requests = addresses.size();

    size_t next = 0;
    std::vector<uint32_t> issue;
    while (next < addresses.size()) {
        uint64_t busy = 0;
        issue.clear();
        // Issue the longest collision-free prefix this cycle.
        while (next < addresses.size() &&
               issue.size() < static_cast<size_t>(sram.numBanks())) {
            uint64_t bit = 1ull << sram.bankOf(addresses[next]);
            if (busy & bit)
                break;
            busy |= bit;
            issue.push_back(addresses[next++]);
        }
        sram.serveReads(issue);
        stats.cycles++;
    }
    return stats;
}

} // namespace instant3d
