/**
 * @file
 * Area and energy models of the Instant-3D accelerator (Fig 15).
 *
 * The paper reports post-layout numbers from Synopsys DC + Cadence
 * Innovus at 28 nm (6.8 mm^2, 1.9 W, area 78% grid cores / 22% MLP,
 * energy 81% / 19%). Without the commercial flow we use per-component
 * 28-nm constants (pJ per SRAM/DRAM access, pJ per fp16 MAC, mm^2 per
 * KB of SRAM and per MAC) chosen to land on the published totals; the
 * models then scale correctly when the microarchitecture is changed
 * (bank counts, buffer sizes, MLP unit shape), which is what the
 * ablation benches exercise.
 */

#ifndef INSTANT3D_ACCEL_ENERGY_MODEL_HH
#define INSTANT3D_ACCEL_ENERGY_MODEL_HH

#include "accel/accelerator.hh"

namespace instant3d {

/** 28-nm energy constants. */
struct EnergyParams
{
    double sramReadPj = 25.0;    //!< One 4 B hash-table read + interp.
    double sramWriteOpPj = 28.0; //!< One bank op of a write-back RMW.
    double dramPjPerByte = 100.0; //!< LPDDR4 access energy.
    double macPj = 0.16;         //!< One fp16 MAC (incl. local regs).
    double staticWatts = 0.75;   //!< Leakage + clock tree.
};

/** Energy report for one workload run. */
struct EnergyReport
{
    double totalJoules = 0.0;
    double avgPowerWatts = 0.0;
    double gridFraction = 0.0; //!< Grid cores incl. SRAM + DRAM share.
    double mlpFraction = 0.0;
    double frmBumFraction = 0.0; //!< Scheduling-logic slice (in grid).
};

/** Area report of one accelerator configuration. */
struct AreaReport
{
    double totalMm2 = 0.0;
    double gridCoresMm2 = 0.0; //!< SRAM banks + grid-core logic.
    double mlpMm2 = 0.0;
    double frmMm2 = 0.0;       //!< Included in gridCoresMm2.
    double bumMm2 = 0.0;       //!< Included in gridCoresMm2.

    double gridFraction() const
    { return totalMm2 > 0.0 ? gridCoresMm2 / totalMm2 : 0.0; }
    double mlpFraction() const
    { return totalMm2 > 0.0 ? mlpMm2 / totalMm2 : 0.0; }
};

/**
 * Energy model: converts AcceleratorResult activity counts to joules.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams());

    const EnergyParams &params() const { return energyParams; }

    /** Energy of a full training run. */
    EnergyReport report(const AcceleratorResult &result,
                        int iterations) const;

  private:
    EnergyParams energyParams;
};

/** 28-nm area constants. */
struct AreaParams
{
    double sramMm2PerKb = 2.6e-3;   //!< Dense 28-nm SRAM macro.
    double otherSramKb = 512.0;     //!< Coordinate/address buffers
                                    //!< (Tab 3's 1.5 MB total SRAM).
    double coreLogicMm2 = 0.09;     //!< Hash/interp/gradient per core.
    double frmMm2PerBank = 0.004;   //!< Collision detector + mux slice.
    double bumMm2PerEntry = 0.009;  //!< CAM entry + accumulator.
    double macMm2 = 2.9e-4;         //!< One fp16 MAC PE.
    double mlpBufferMm2 = 0.24;     //!< Activation/weight buffers.
};

/** Compute the silicon area of an accelerator configuration. */
AreaReport areaReport(const AcceleratorConfig &config,
                      const AreaParams &params = AreaParams());

} // namespace instant3d

#endif // INSTANT3D_ACCEL_ENERGY_MODEL_HH
