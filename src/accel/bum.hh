/**
 * @file
 * Back-Propagation Update Merger (BUM, Sec 4.5 / Fig 13).
 *
 * During back-propagation, multiple gradient updates target the same
 * hash-table entry within a short time window (Fig 10). The BUM holds a
 * small CAM-indexed buffer (16 entries, Sec 5.1); each incoming update
 * either merges into a matching entry (accumulating the scaled
 * gradient) or allocates a new one, evicting the least-recently-merged
 * entry when full. Entries idle for N cycles flush to SRAM. The effect
 * is one SRAM write for many logical updates, with bit-identical final
 * table contents (addition is the merge operator).
 */

#ifndef INSTANT3D_ACCEL_BUM_HH
#define INSTANT3D_ACCEL_BUM_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace instant3d {

/** Static configuration of one BUM unit. */
struct BumConfig
{
    int numEntries = 16;     //!< CAM buffer capacity (Sec 5.1).
    int timeoutCycles = 64;  //!< Idle cycles before write-back.
    float learningRate = 1.0f; //!< Pre-scale applied to gradients.
};

/** Throughput/traffic statistics of a BUM run. */
struct BumStats
{
    uint64_t updatesIn = 0;  //!< Logical gradient updates received.
    uint64_t sramWrites = 0; //!< Physical write-backs issued.
    uint64_t merges = 0;     //!< Updates absorbed into live entries.

    /** Fraction of updates that did not become SRAM writes. */
    double
    mergeRatio() const
    {
        if (updatesIn == 0)
            return 0.0;
        return 1.0 -
               static_cast<double>(sramWrites) / updatesIn;
    }
};

/**
 * Cycle-approximate functional model of the BUM.
 */
class BumUnit
{
  public:
    explicit BumUnit(const BumConfig &config);

    const BumConfig &config() const { return cfg; }

    /**
     * Push one gradient update (one cycle). The value is multiplied by
     * the configured learning rate before accumulation (Fig 13b).
     */
    void pushUpdate(uint64_t address, float gradient);

    /** Advance one idle cycle (ages buffered entries). */
    void idleCycle();

    /** Flush every live entry to SRAM (end of back-propagation pass). */
    void flushAll();

    const BumStats &stats() const { return bumStats; }

    /**
     * Accumulated value committed to each address so far (SRAM-side
     * view; used to verify merge correctness).
     */
    const std::unordered_map<uint64_t, double> &committed() const
    { return sram; }

    /** Number of currently buffered (un-flushed) entries. */
    size_t liveEntries() const { return buffer.size(); }

    /** Addresses in the order their write-backs were issued. */
    const std::vector<uint64_t> &writebackOrder() const
    { return wbOrder; }

  private:
    struct Entry
    {
        uint64_t address;
        double value;
        uint64_t lastTouch; //!< Cycle of the last merge.
    };

    void tick();
    void writeBack(size_t idx);

    BumConfig cfg;
    std::vector<Entry> buffer;
    std::unordered_map<uint64_t, double> sram;
    std::vector<uint64_t> wbOrder;
    BumStats bumStats;
    uint64_t cycle = 0;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_BUM_HH
