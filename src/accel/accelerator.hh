/**
 * @file
 * The Instant-3D accelerator (Sec 4.3 / Fig 11): four grid cores with
 * FRM units, per-core BUM units, the multi-core-fusion reconfigurable
 * scheme, FP16 MLP units (systolic array + multiplier-adder tree), and
 * an LPDDR4 DRAM interface, orchestrated with the host SoC exactly as
 * in the paper (steps 1-2 and 4-5 on the host, step 3 + its BP on the
 * accelerator).
 *
 * Runtime composition: per-access issue efficiencies and BUM merge
 * ratios are *measured* by replaying captured training traces through
 * the FrmUnit/BumUnit models (accel/calibration.hh); the Accelerator
 * scales those costs to the paper-scale workload, schedules each grid
 * level onto a fusion mode by its table size, overlaps grid cores with
 * MLP units, and accounts DRAM table streaming.
 */

#ifndef INSTANT3D_ACCEL_ACCELERATOR_HH
#define INSTANT3D_ACCEL_ACCELERATOR_HH

#include <vector>

#include "accel/calibration.hh"
#include "accel/fusion.hh"
#include "accel/mlp_unit.hh"
#include "core/workload.hh"
#include "devices/device.hh"

namespace instant3d {

/** Microarchitectural configuration (defaults = the paper's design). */
struct AcceleratorConfig
{
    int numGridCores = 4;
    int banksPerCore = 8;
    uint64_t sramBytesPerCore = 256 * 1024;
    int frmWindowDepth = 16;    //!< Sec 5.1: reorder depth 16.
    int bumEntries = 16;        //!< Sec 5.1: BUM buffer 16 entries.
    int bumTimeoutCycles = 64;
    double bumIntakePerCorePerCycle = 8.0; //!< Updates absorbed/cycle.
    MlpUnitConfig mlp;
    double frequencyGHz = 0.8;  //!< Tab 3 / Fig 15: 800 MHz.
    double dramBandwidthGBs = 59.7; //!< LPDDR4-1866 (Sec 5.1).
    double dramStreamEff = 0.8; //!< Sequential table-DMA efficiency.
    double dramRandomEff = 0.08; //!< Random access on SRAM spill.
    double pipelineOverhead = 0.05; //!< Fill/sync fraction.
    double hostSecondsPerIter = 3e-4; //!< Host-SoC steps 1-2, 4-5.

    // Ablation switches (Fig 17 / Fig 18 / Tab 5).
    bool enableFrm = true;
    bool enableBum = true;
    bool enableFusion = true;
};

/** Per-branch grid-step simulation detail, for reporting. */
struct BranchCycleReport
{
    std::string branchName;
    uint64_t ffCycles = 0;
    uint64_t bpCycles = 0;
    uint64_t sramReads = 0;
    uint64_t sramWriteOps = 0;   //!< Read-modify-write bank operations.
    uint64_t dramStreamBytes = 0;
    uint64_t dramSpillAccesses = 0;
    std::vector<FusionLevel> levelModes; //!< Fusion mode per level.
};

/** Full per-iteration simulation result. */
struct AcceleratorResult
{
    StepBreakdown breakdown;       //!< Seconds/iter per pipeline step.
    double secondsPerIter = 0.0;   //!< After grid/MLP overlap.
    double totalSeconds = 0.0;     //!< All iterations.
    std::vector<BranchCycleReport> branches;
    uint64_t mlpFfCycles = 0;
    uint64_t mlpBpCycles = 0;
    double gridSeconds = 0.0;      //!< Grid-core pipeline time/iter.
    double mlpSeconds = 0.0;       //!< MLP-unit pipeline time/iter.

    // Per-iteration energy-relevant activity counts.
    double sramReadsPerIter = 0.0;
    double sramWriteOpsPerIter = 0.0;
    double dramBytesPerIter = 0.0;
    double macsPerIter = 0.0;
};

/**
 * Analytic + trace-calibrated model of the Instant-3D accelerator.
 */
class Accelerator
{
  public:
    Accelerator(const AcceleratorConfig &config,
                const TraceCalibration &calibration);

    const AcceleratorConfig &config() const { return cfg; }
    const TraceCalibration &calibration() const { return calib; }

    /** Simulate one training workload end to end. */
    AcceleratorResult simulate(const TrainingWorkload &workload) const;

    /** Convenience: total training seconds. */
    double trainingSeconds(const TrainingWorkload &workload) const
    { return simulate(workload).totalSeconds; }

    /** Total SRAM capacity across grid cores (bytes). */
    uint64_t totalSramBytes() const
    { return cfg.sramBytesPerCore * cfg.numGridCores; }

  private:
    /** Grid-level resolutions of a branch (NGP growth schedule). */
    std::vector<uint64_t> levelTableBytes(const BranchWorkload &b) const;

    BranchCycleReport simulateBranch(const BranchWorkload &b,
                                     double points_per_iter) const;

    AcceleratorConfig cfg;
    TraceCalibration calib;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_ACCELERATOR_HH
