/**
 * @file
 * MLP compute units (Sec 4.3, "MLP Unit Design"): an FP16 systolic
 * array for matrix multiplications with large output channels, and an
 * FP16 multiplier-adder tree for small output channels (<= 3), where a
 * systolic array would idle most of its columns (the paper's design
 * point, after [14, 33]).
 */

#ifndef INSTANT3D_ACCEL_MLP_UNIT_HH
#define INSTANT3D_ACCEL_MLP_UNIT_HH

#include <cstdint>
#include <vector>

namespace instant3d {

/** Sizing of the two MLP compute units. */
struct MlpUnitConfig
{
    int systolicRows = 64;    //!< PE rows (input-channel dimension).
    int systolicCols = 64;    //!< PE columns (output-channel dimension).
    int adderTreeLanes = 64;  //!< MACs per tree.
    int numAdderTrees = 4;    //!< Parallel trees (small-channel unit).
    int smallChannelCutoff = 3; //!< <= this output width -> tree unit.
    double systolicEfficiency = 0.85; //!< Fill/drain and skew losses.
};

/** Which unit a layer was scheduled on. */
enum class MlpUnitKind { SystolicArray, MulAddTree };

/** Cycle estimate for one layer of one batch. */
struct MlpLayerCost
{
    MlpUnitKind unit;
    uint64_t cycles = 0;
    uint64_t macs = 0;

    double
    utilization(const MlpUnitConfig &cfg) const
    {
        double peak = unit == MlpUnitKind::SystolicArray
                          ? static_cast<double>(cfg.systolicRows) *
                                cfg.systolicCols
                          : static_cast<double>(cfg.adderTreeLanes) *
                                cfg.numAdderTrees;
        if (cycles == 0 || peak <= 0.0)
            return 0.0;
        return static_cast<double>(macs) / (cycles * peak);
    }
};

/**
 * Analytic cycle model of the two MLP units.
 */
class MlpUnitModel
{
  public:
    explicit MlpUnitModel(const MlpUnitConfig &config);

    const MlpUnitConfig &config() const { return cfg; }

    /**
     * Cycles for a dense layer: batch x in_dim -> batch x out_dim.
     * Layers with out_dim <= smallChannelCutoff go to the tree unit.
     */
    MlpLayerCost layerCost(uint64_t batch, int in_dim, int out_dim) const;

    /**
     * Total cycles for a full MLP given its layer dims [in, h..., out],
     * forward direction.
     */
    uint64_t forwardCycles(uint64_t batch,
                           const std::vector<int> &dims) const;

    /** Backward pass: ~2x the forward matrix work. */
    uint64_t backwardCycles(uint64_t batch,
                            const std::vector<int> &dims) const;

    /** Peak MACs per cycle across both units. */
    double peakMacsPerCycle() const;

  private:
    MlpUnitConfig cfg;
};

} // namespace instant3d

#endif // INSTANT3D_ACCEL_MLP_UNIT_HH
