#include "accel/energy_model.hh"

#include "common/logging.hh"

namespace instant3d {

EnergyModel::EnergyModel(const EnergyParams &params)
    : energyParams(params)
{
}

EnergyReport
EnergyModel::report(const AcceleratorResult &result, int iterations) const
{
    fatalIf(iterations < 1, "energy report needs iterations");
    const auto &p = energyParams;

    double grid_j = (result.sramReadsPerIter * p.sramReadPj +
                     result.sramWriteOpsPerIter * p.sramWriteOpPj) *
                    1e-12 * iterations;
    double dram_j =
        result.dramBytesPerIter * p.dramPjPerByte * 1e-12 * iterations;
    double mlp_j = result.macsPerIter * p.macPj * 1e-12 * iterations;
    double static_j = p.staticWatts * result.totalSeconds;

    EnergyReport rep;
    // Static power apportioned by area-like shares (grid cores
    // dominate the floorplan, Fig 15): 78% grid side, 22% MLP.
    double grid_total = grid_j + dram_j + 0.78 * static_j;
    double mlp_total = mlp_j + 0.22 * static_j;
    rep.totalJoules = grid_total + mlp_total;
    rep.avgPowerWatts =
        result.totalSeconds > 0.0 ? rep.totalJoules / result.totalSeconds
                                  : 0.0;
    rep.gridFraction = grid_total / rep.totalJoules;
    rep.mlpFraction = mlp_total / rep.totalJoules;
    // The FRM/BUM scheduling slice of grid-core energy: CAM matches and
    // collision checks, a fixed fraction of per-access energy.
    rep.frmBumFraction = 0.30 * grid_j / rep.totalJoules;
    return rep;
}

AreaReport
areaReport(const AcceleratorConfig &config, const AreaParams &params)
{
    AreaReport rep;

    double sram_kb = static_cast<double>(config.sramBytesPerCore) *
                     config.numGridCores / 1024.0 + params.otherSramKb;
    double sram = sram_kb * params.sramMm2PerKb;
    double core_logic = params.coreLogicMm2 * config.numGridCores;

    // FRM units: one B8 per core, one B16 per pair, one B32 overall
    // (Fig 11): total banks-worth of scheduling logic.
    int frm_banks = config.numGridCores * config.banksPerCore // B8 x4
                    + 2 * (2 * config.banksPerCore)           // B16 x2
                    + config.numGridCores * config.banksPerCore; // B32
    rep.frmMm2 = frm_banks * params.frmMm2PerBank;
    rep.bumMm2 = config.numGridCores * config.bumEntries *
                 params.bumMm2PerEntry;

    rep.gridCoresMm2 = sram + core_logic + rep.frmMm2 + rep.bumMm2;

    double macs = static_cast<double>(config.mlp.systolicRows) *
                      config.mlp.systolicCols +
                  static_cast<double>(config.mlp.adderTreeLanes) *
                      config.mlp.numAdderTrees;
    rep.mlpMm2 = macs * params.macMm2 + params.mlpBufferMm2;

    rep.totalMm2 = rep.gridCoresMm2 + rep.mlpMm2;
    return rep;
}

} // namespace instant3d
