#include "accel/grid_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace instant3d {

const char *
GridCoreResult::bottleneck() const
{
    uint64_t peak = std::max({sramBoundCycles, hashBoundCycles,
                              interpBoundCycles});
    if (peak == sramBoundCycles)
        return "sram";
    if (peak == hashBoundCycles)
        return "hash";
    return "interp";
}

GridCore::GridCore(const GridCoreConfig &config)
    : cfg(config)
{
    fatalIf(cfg.banks < 1, "grid core needs banks");
    fatalIf(cfg.hashAddressesPerCycle < 1,
            "hash unit throughput must be positive");
    fatalIf(cfg.interpPointsPerCycle < 1,
            "interpolation throughput must be positive");
}

GridCoreResult
GridCore::processLevelPass(
    const std::vector<std::array<uint32_t, 8>> &points) const
{
    GridCoreResult res;
    if (points.empty())
        return res;

    // Flatten into the SRAM request stream.
    std::vector<uint32_t> addrs;
    addrs.reserve(points.size() * 8);
    for (const auto &p : points)
        addrs.insert(addrs.end(), p.begin(), p.end());

    SramArray sram(cfg.banks, 4, 4ull << 20, cfg.tableEntries);
    if (cfg.enableFrm) {
        FrmUnit frm(sram, cfg.frmWindowDepth);
        res.frm = frm.process(addrs);
    } else {
        res.frm = FrmUnit::processInOrder(sram, addrs);
    }
    res.sramBoundCycles = res.frm.cycles;

    uint64_t n = points.size();
    res.hashBoundCycles =
        (n * 8 + cfg.hashAddressesPerCycle - 1) /
        cfg.hashAddressesPerCycle;
    res.interpBoundCycles =
        (n + cfg.interpPointsPerCycle - 1) / cfg.interpPointsPerCycle;

    res.cycles = std::max({res.sramBoundCycles, res.hashBoundCycles,
                           res.interpBoundCycles}) +
                 cfg.pipelineLatency;
    return res;
}

GridCore::BackpropResult
GridCore::processBackpropPass(
    const std::vector<std::array<uint32_t, 8>> &points) const
{
    BackpropResult res;
    if (points.empty())
        return res;
    res.updates = points.size() * 8;

    // Stage 1: gradient updates stream through the BUM (or bypass it).
    std::vector<uint64_t> writebacks;
    if (cfg.enableBum) {
        BumUnit bum(cfg.bum);
        for (const auto &p : points)
            for (uint32_t a : p)
                bum.pushUpdate(a, 1.0f);
        bum.flushAll();
        res.bum = bum.stats();
        writebacks = bum.writebackOrder();
    } else {
        writebacks.reserve(res.updates);
        for (const auto &p : points)
            for (uint32_t a : p)
                writebacks.push_back(a);
        res.bum.updatesIn = res.updates;
        res.bum.sramWrites = res.updates;
    }
    res.writeBacks = writebacks.size();

    // Stage 2: each write-back is a read-modify-write -- two bank
    // operations on the same bank, modelled as duplicated requests.
    std::vector<uint32_t> ops;
    ops.reserve(2 * writebacks.size());
    for (uint64_t a : writebacks) {
        ops.push_back(static_cast<uint32_t>(a));
        ops.push_back(static_cast<uint32_t>(a));
    }
    SramArray sram(cfg.banks, 4, 4ull << 20, cfg.tableEntries);
    FrmStats issue;
    if (cfg.enableBum) {
        // Buffered write-backs are schedulable, like FRM reads.
        FrmUnit frm(sram, cfg.frmWindowDepth);
        issue = frm.process(ops);
    } else {
        issue = FrmUnit::processInOrder(sram, ops);
    }

    uint64_t intake_cycles =
        (res.updates + cfg.bumIntakePerCycle - 1) /
        cfg.bumIntakePerCycle;
    res.cycles = std::max(issue.cycles, intake_cycles) +
                 cfg.pipelineLatency;
    return res;
}

} // namespace instant3d
