#include "accel/calibration.hh"

#include "accel/bum.hh"
#include "accel/frm.hh"
#include "common/logging.hh"

namespace instant3d {

double
TraceCalibration::utilization(int banks, bool frm_enabled) const
{
    fatalIf(banks < 1, "bank count must be positive");
    double u8 = frm_enabled ? frmUtil8 : inOrderUtil8;
    double u16 = frm_enabled ? frmUtil16 : inOrderUtil16;
    double u32 = frm_enabled ? frmUtil32 : inOrderUtil32;
    if (banks <= 8)
        return u8;
    if (banks == 16)
        return u16;
    if (banks == 32)
        return u32;
    if (banks < 16) {
        // Log-linear interpolation between the measured widths.
        double t = (banks - 8) / 8.0;
        return u8 + t * (u16 - u8);
    }
    if (banks < 32) {
        double t = (banks - 16) / 16.0;
        return u16 + t * (u32 - u16);
    }
    // Wider than measured: utilization keeps falling with width at the
    // measured 16->32 trend.
    double decay = u32 / std::max(u16, 1e-9);
    double u = u32;
    for (int w = 64; w <= banks; w *= 2)
        u *= decay;
    return u;
}

TraceCalibration
TraceCalibration::defaults()
{
    // Measured on lego-scene traces (see test_calibration.cc, which
    // checks real measurements stay in the neighbourhood of these).
    TraceCalibration c;
    c.frmUtil8 = 0.65;
    c.frmUtil16 = 0.59;
    c.frmUtil32 = 0.50;
    c.inOrderUtil8 = 0.22;
    c.inOrderUtil16 = 0.12;
    c.inOrderUtil32 = 0.06;
    c.bumMergeRatio = 0.48;
    return c;
}

namespace {

/**
 * Split accesses into per-level address streams: the grid core
 * processes one level's SRAM-resident table per pass (Sec 4.3), so the
 * FRM/BUM only ever see one level's stream at a time.
 */
std::vector<std::vector<uint32_t>>
perLevelStreams(const std::vector<GridAccess> &accesses)
{
    uint16_t max_level = 0;
    for (const auto &a : accesses)
        max_level = std::max(max_level, a.level);
    std::vector<std::vector<uint32_t>> out(max_level + 1);
    for (const auto &a : accesses)
        out[a.level].push_back(a.address);
    return out;
}

/** Smallest power of two >= the largest address + 1. */
uint64_t
inferTableEntries(const std::vector<uint32_t> &addrs)
{
    uint32_t max_addr = 0;
    for (uint32_t a : addrs)
        max_addr = std::max(max_addr, a);
    uint64_t entries = 64;
    while (entries <= max_addr)
        entries <<= 1;
    return entries;
}

double
measureUtil(const std::vector<std::vector<uint32_t>> &streams, int banks,
            bool frm, int window_depth)
{
    // The fused FRM's reorder window scales with the number of fused
    // bank groups (a B32 FRM fronts four cores' pipelines).
    int depth = window_depth * std::max(1, banks / 8);
    uint64_t requests = 0, cycles = 0;
    for (const auto &addrs : streams) {
        if (addrs.empty())
            continue;
        SramArray sram(banks, 4, 1ull << 20, inferTableEntries(addrs));
        FrmStats stats;
        if (frm) {
            FrmUnit unit(sram, depth);
            stats = unit.process(addrs);
        } else {
            stats = FrmUnit::processInOrder(sram, addrs);
        }
        requests += stats.requests;
        cycles += stats.cycles;
    }
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(requests) /
           (static_cast<double>(cycles) * banks);
}

} // namespace

TraceCalibration
calibrateFromTrace(const std::vector<GridAccess> &reads,
                   const std::vector<GridAccess> &writes,
                   int frm_window_depth, int bum_entries, int bum_timeout)
{
    fatalIf(reads.empty(), "calibration needs a read trace");
    TraceCalibration c;

    auto streams = perLevelStreams(reads);
    c.frmUtil8 = measureUtil(streams, 8, true, frm_window_depth);
    c.frmUtil16 = measureUtil(streams, 16, true, frm_window_depth);
    c.frmUtil32 = measureUtil(streams, 32, true, frm_window_depth);
    c.inOrderUtil8 = measureUtil(streams, 8, false, frm_window_depth);
    c.inOrderUtil16 = measureUtil(streams, 16, false, frm_window_depth);
    c.inOrderUtil32 = measureUtil(streams, 32, false, frm_window_depth);

    if (!writes.empty()) {
        // One BUM per level pass; aggregate the traffic reduction.
        uint64_t updates = 0, sram_writes = 0;
        for (const auto &stream : perLevelStreams(writes)) {
            if (stream.empty())
                continue;
            BumConfig bcfg;
            bcfg.numEntries = bum_entries;
            bcfg.timeoutCycles = bum_timeout;
            BumUnit bum(bcfg);
            for (uint32_t addr : stream)
                bum.pushUpdate(addr, 1.0f);
            bum.flushAll();
            updates += bum.stats().updatesIn;
            sram_writes += bum.stats().sramWrites;
        }
        if (updates > 0)
            c.bumMergeRatio =
                1.0 - static_cast<double>(sram_writes) / updates;
    }
    return c;
}

} // namespace instant3d
