#include "accel/bum.hh"

#include "common/logging.hh"

namespace instant3d {

BumUnit::BumUnit(const BumConfig &config)
    : cfg(config)
{
    fatalIf(cfg.numEntries < 1, "BUM needs at least one entry");
    fatalIf(cfg.timeoutCycles < 1, "BUM timeout must be positive");
    buffer.reserve(cfg.numEntries);
}

void
BumUnit::writeBack(size_t idx)
{
    sram[buffer[idx].address] += buffer[idx].value;
    wbOrder.push_back(buffer[idx].address);
    bumStats.sramWrites++;
    buffer.erase(buffer.begin() + static_cast<long>(idx));
}

void
BumUnit::tick()
{
    cycle++;
    // Flush entries idle past the timeout (Fig 13: "no updates for N
    // cycles, write to SRAM").
    for (size_t i = 0; i < buffer.size();) {
        if (cycle - buffer[i].lastTouch >=
            static_cast<uint64_t>(cfg.timeoutCycles)) {
            writeBack(i);
        } else {
            i++;
        }
    }
}

void
BumUnit::pushUpdate(uint64_t address, float gradient)
{
    tick();
    bumStats.updatesIn++;
    double scaled = static_cast<double>(gradient) * cfg.learningRate;

    // One-to-All-Match (Fig 13b).
    for (auto &e : buffer) {
        if (e.address == address) {
            e.value += scaled;
            e.lastTouch = cycle;
            bumStats.merges++;
            return;
        }
    }

    // Match failed: allocate, evicting the least-recently-merged entry
    // (the buffer tail in Fig 13a) when full.
    if (buffer.size() >= static_cast<size_t>(cfg.numEntries)) {
        size_t oldest = 0;
        for (size_t i = 1; i < buffer.size(); i++)
            if (buffer[i].lastTouch < buffer[oldest].lastTouch)
                oldest = i;
        writeBack(oldest);
    }
    buffer.push_back({address, scaled, cycle});
}

void
BumUnit::idleCycle()
{
    tick();
}

void
BumUnit::flushAll()
{
    while (!buffer.empty())
        writeBack(buffer.size() - 1);
}

} // namespace instant3d
